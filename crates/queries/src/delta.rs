//! Result deltas: the unit of delivery for standing queries.
//!
//! A standing query's materialized result is a sorted map from key (a
//! vertex id, or `0` for scalar counts) to a `u64` value. After each
//! committed batch the maintainer produces the *difference* between the
//! previous and the new materialization — added, removed, and changed
//! entries — instead of shipping the whole result.

use std::collections::BTreeMap;

/// Identifies one registered subscription within a registry/hub.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub u64);

/// The incremental result of one subscription for one committed batch.
///
/// Keys are vertex ids for vertex-valued queries (k-hop, membership) and
/// `0` for scalar counts (windowed edge/triangle counts). A delta with no
/// entries still marks that the subscription observed the batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultDelta {
    /// Which subscription this delta belongs to.
    pub sub: SubscriptionId,
    /// Sequence number of the batch that produced it ([`LsGraph::batch_seq`]
    /// order; catch-up deltas from a restart reuse the seq they caught up to).
    ///
    /// [`LsGraph::batch_seq`]: lsgraph_core::LsGraph::batch_seq
    pub seq: u64,
    /// Keys present now that were absent before, with their new value.
    pub added: Vec<(u32, u64)>,
    /// Keys absent now that were present before, with their old value.
    pub removed: Vec<(u32, u64)>,
    /// Keys present in both with a different value: `(key, old, new)`.
    pub changed: Vec<(u32, u64, u64)>,
}

impl ResultDelta {
    /// An empty delta for `sub` at `seq`.
    pub fn empty(sub: SubscriptionId, seq: u64) -> Self {
        ResultDelta {
            sub,
            seq,
            added: Vec::new(),
            removed: Vec::new(),
            changed: Vec::new(),
        }
    }

    /// True when the batch left the result untouched.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Total entries carried (`added + removed + changed`).
    pub fn entries(&self) -> u64 {
        (self.added.len() + self.removed.len() + self.changed.len()) as u64
    }

    /// Replays this delta onto a client-side copy of the result.
    ///
    /// A client that starts from the registration-time materialization and
    /// applies every delivered delta in `seq` order reconstructs the
    /// server-side result exactly — the differential oracle tests hold the
    /// layer to precisely this contract.
    pub fn apply_to(&self, result: &mut BTreeMap<u32, u64>) {
        for &(k, v) in &self.added {
            result.insert(k, v);
        }
        for &(k, _) in &self.removed {
            result.remove(&k);
        }
        for &(k, _, v) in &self.changed {
            result.insert(k, v);
        }
    }
}

/// Diffs two materializations into a delta (entries in ascending key order).
pub fn diff(
    sub: SubscriptionId,
    seq: u64,
    old: &BTreeMap<u32, u64>,
    new: &BTreeMap<u32, u64>,
) -> ResultDelta {
    let mut d = ResultDelta::empty(sub, seq);
    for (&k, &v) in new {
        match old.get(&k) {
            None => d.added.push((k, v)),
            Some(&ov) if ov != v => d.changed.push((k, ov, v)),
            Some(_) => {}
        }
    }
    for (&k, &v) in old {
        if !new.contains_key(&k) {
            d.removed.push((k, v));
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(pairs: &[(u32, u64)]) -> BTreeMap<u32, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn diff_classifies_added_removed_changed() {
        let old = map(&[(1, 10), (2, 20), (3, 30)]);
        let new = map(&[(2, 25), (3, 30), (4, 40)]);
        let d = diff(SubscriptionId(7), 3, &old, &new);
        assert_eq!(d.sub, SubscriptionId(7));
        assert_eq!(d.seq, 3);
        assert_eq!(d.added, vec![(4, 40)]);
        assert_eq!(d.removed, vec![(1, 10)]);
        assert_eq!(d.changed, vec![(2, 20, 25)]);
        assert_eq!(d.entries(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn identical_maps_diff_to_empty() {
        let m = map(&[(0, 1), (5, 9)]);
        let d = diff(SubscriptionId(0), 1, &m, &m);
        assert!(d.is_empty());
        assert_eq!(d.entries(), 0);
    }

    #[test]
    fn apply_to_replays_diff_exactly() {
        let old = map(&[(1, 10), (2, 20), (3, 30), (9, 90)]);
        let new = map(&[(2, 21), (3, 30), (4, 44)]);
        let d = diff(SubscriptionId(1), 8, &old, &new);
        let mut replay = old.clone();
        d.apply_to(&mut replay);
        assert_eq!(replay, new);
    }
}
