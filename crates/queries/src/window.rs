//! A sliding window over the last *W* committed batches.
//!
//! Windowed standing queries ("edge/triangle count over the last W
//! batches") need per-batch expiry: when batch `seq` commits, the
//! contribution of batch `seq - W` leaves the window. The window keeps one
//! slot per observed batch — insert batches contribute their (deduplicated)
//! edges, delete batches contribute nothing but still occupy a slot and age
//! the window — so expiry is exact and deterministic.

use std::collections::VecDeque;

use lsgraph_api::Edge;
use lsgraph_core::BatchKind;

/// One observed batch inside the window.
#[derive(Clone, Debug)]
pub struct WindowSlot {
    /// Sequence number of the batch this slot records.
    pub seq: u64,
    /// Whether the batch inserted or deleted edges.
    pub kind: BatchKind,
    /// Deduplicated edges of an insert batch (empty for deletes).
    pub edges: Vec<Edge>,
}

/// Sliding window retaining the last `cap` batches.
#[derive(Clone, Debug)]
pub struct BatchWindow {
    cap: usize,
    slots: VecDeque<WindowSlot>,
}

impl BatchWindow {
    /// An empty window retaining up to `cap` batches (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        BatchWindow {
            cap: cap.max(1),
            slots: VecDeque::new(),
        }
    }

    /// The configured window size in batches.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Batches currently inside the window.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True before any batch has been observed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Observes one committed batch, expiring the slot that falls out of
    /// the window.
    pub fn push(&mut self, seq: u64, kind: BatchKind, batch: &[Edge]) {
        let mut edges = match kind {
            BatchKind::Insert => batch.to_vec(),
            BatchKind::Delete => Vec::new(),
        };
        edges.sort_unstable_by_key(|e| (e.src, e.dst));
        edges.dedup_by_key(|e| (e.src, e.dst));
        self.slots.push_back(WindowSlot { seq, kind, edges });
        while self.slots.len() > self.cap {
            self.slots.pop_front();
        }
    }

    /// Drops all slots (a restarted windowed subscription begins empty).
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Distinct directed edges inserted by batches still inside the window,
    /// sorted by `(src, dst)`.
    ///
    /// These are *candidates*: whether an edge still exists must be checked
    /// against the current snapshot (a later delete batch may have removed
    /// it while its insert slot is still in the window).
    pub fn candidate_edges(&self) -> Vec<Edge> {
        let mut all: Vec<Edge> = self
            .slots
            .iter()
            .flat_map(|s| s.edges.iter().copied())
            .collect();
        all.sort_unstable_by_key(|e| (e.src, e.dst));
        all.dedup_by_key(|e| (e.src, e.dst));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(s: u32, d: u32) -> Edge {
        Edge::new(s, d)
    }

    #[test]
    fn expiry_drops_oldest_batch() {
        let mut w = BatchWindow::new(2);
        w.push(1, BatchKind::Insert, &[e(0, 1)]);
        w.push(2, BatchKind::Insert, &[e(1, 2)]);
        assert_eq!(w.candidate_edges(), vec![e(0, 1), e(1, 2)]);
        w.push(3, BatchKind::Insert, &[e(2, 3)]);
        // Batch 1's edge expired.
        assert_eq!(w.candidate_edges(), vec![e(1, 2), e(2, 3)]);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn delete_batches_occupy_slots_but_add_no_edges() {
        let mut w = BatchWindow::new(2);
        w.push(1, BatchKind::Insert, &[e(0, 1)]);
        w.push(2, BatchKind::Delete, &[e(0, 1)]);
        assert_eq!(w.candidate_edges(), vec![e(0, 1)]);
        w.push(3, BatchKind::Delete, &[e(9, 9)]);
        // The insert slot aged out; only delete slots remain.
        assert!(w.candidate_edges().is_empty());
    }

    #[test]
    fn candidates_dedup_within_and_across_slots() {
        let mut w = BatchWindow::new(3);
        w.push(1, BatchKind::Insert, &[e(0, 1), e(0, 1), e(2, 0)]);
        w.push(2, BatchKind::Insert, &[e(0, 1)]);
        assert_eq!(w.candidate_edges(), vec![e(0, 1), e(2, 0)]);
    }

    #[test]
    fn cap_is_at_least_one() {
        let mut w = BatchWindow::new(0);
        assert_eq!(w.cap(), 1);
        w.push(1, BatchKind::Insert, &[e(0, 1)]);
        w.push(2, BatchKind::Insert, &[e(1, 2)]);
        assert_eq!(w.candidate_edges(), vec![e(1, 2)]);
    }
}
