//! Per-subscription incremental maintainers.
//!
//! Each registered [`StandingQuery`] is backed by a maintainer that absorbs
//! one committed batch at a time and can materialize the current result on
//! demand:
//!
//! * k-hop → [`IncrementalBfs`] (monotone relaxation on inserts, full
//!   recompute on deletes),
//! * component membership → [`IncrementalCc`] (union-find on inserts,
//!   rebuild on deletes),
//! * windowed counts → a [`BatchWindow`] with per-batch expiry, re-counted
//!   against the snapshot at materialization time.

use std::collections::BTreeMap;

use lsgraph_analytics::{incremental::INF, IncrementalBfs, IncrementalCc};
use lsgraph_api::{Edge, Graph};
use lsgraph_core::BatchKind;

use crate::query::{present_window_edges, window_triangles, StandingQuery};
use crate::window::BatchWindow;

/// The incremental state behind one subscription.
#[derive(Clone, Debug)]
pub enum Maintainer {
    /// Maintains hop distances for [`StandingQuery::KHop`].
    KHop {
        /// Hop cutoff (inclusive).
        k: u32,
        /// The distance maintainer.
        bfs: IncrementalBfs,
    },
    /// Maintains a union-find forest for
    /// [`StandingQuery::ComponentMembership`].
    Membership {
        /// Membership anchor vertex.
        src: u32,
        /// The component maintainer.
        cc: IncrementalCc,
    },
    /// Maintains the batch window for [`StandingQuery::WindowedEdgeCount`].
    WindowEdges {
        /// Sliding window over recent batches.
        window: BatchWindow,
    },
    /// Maintains the batch window for
    /// [`StandingQuery::WindowedTriangleCount`].
    WindowTriangles {
        /// Sliding window over recent batches.
        window: BatchWindow,
    },
}

impl Maintainer {
    /// Builds the maintainer for `query` against the current graph.
    ///
    /// # Panics
    ///
    /// Panics if a k-hop source is `>= g.num_vertices()` (the engine only
    /// grows, so a source valid at registration stays valid).
    pub fn new<G: Graph + ?Sized>(query: &StandingQuery, g: &G) -> Self {
        match *query {
            StandingQuery::KHop { src, k } => {
                assert!(
                    (src as usize) < g.num_vertices(),
                    "k-hop source {src} out of range (graph has {} vertices)",
                    g.num_vertices()
                );
                Maintainer::KHop {
                    k,
                    bfs: IncrementalBfs::new(g, src),
                }
            }
            StandingQuery::ComponentMembership { src } => Maintainer::Membership {
                src,
                cc: IncrementalCc::new(g),
            },
            StandingQuery::WindowedEdgeCount { window } => Maintainer::WindowEdges {
                window: BatchWindow::new(window),
            },
            StandingQuery::WindowedTriangleCount { window } => Maintainer::WindowTriangles {
                window: BatchWindow::new(window),
            },
        }
    }

    /// Absorbs one committed batch (`g` is the post-batch snapshot).
    ///
    /// `lossy` marks a batch that committed incompletely (quarantined runs
    /// dropped edges, or edges were skipped on quarantined vertices): the
    /// batch contents can no longer be trusted to mirror the graph, so the
    /// traversal maintainers rebuild from the snapshot instead of applying
    /// incrementally. Window maintainers record the slot either way — the
    /// batch still happened, its candidates are presence-filtered against
    /// the snapshot at materialization, and the window must age.
    pub fn apply<G: Graph + ?Sized>(
        &mut self,
        g: &G,
        seq: u64,
        kind: BatchKind,
        batch: &[Edge],
        lossy: bool,
    ) {
        match self {
            Maintainer::KHop { bfs, .. } => match kind {
                _ if lossy => bfs.recompute(g),
                BatchKind::Insert => bfs.on_insert(g, batch),
                BatchKind::Delete => bfs.on_delete(g),
            },
            Maintainer::Membership { cc, .. } => match kind {
                _ if lossy => *cc = IncrementalCc::new(g),
                BatchKind::Insert => cc.on_insert(batch),
                BatchKind::Delete => cc.on_delete(g),
            },
            Maintainer::WindowEdges { window } | Maintainer::WindowTriangles { window } => {
                window.push(seq, kind, batch);
            }
        }
    }

    /// Rebuilds derived state from the snapshot alone (window maintainers
    /// keep their history: presence is re-checked at materialization).
    pub fn refresh<G: Graph + ?Sized>(&mut self, g: &G) {
        match self {
            Maintainer::KHop { bfs, .. } => bfs.recompute(g),
            Maintainer::Membership { cc, .. } => *cc = IncrementalCc::new(g),
            Maintainer::WindowEdges { .. } | Maintainer::WindowTriangles { .. } => {}
        }
    }

    /// Materializes the query result against `g`.
    pub fn materialize<G: Graph + ?Sized>(&mut self, g: &G) -> BTreeMap<u32, u64> {
        match self {
            Maintainer::KHop { k, bfs } => {
                let n = g.num_vertices();
                bfs.distances()
                    .iter()
                    .take(n)
                    .enumerate()
                    .filter(|&(_, &d)| d != INF && d <= *k)
                    .map(|(v, &d)| (v as u32, d as u64))
                    .collect()
            }
            Maintainer::Membership { src, cc } => {
                let labels = cc.labels();
                let n = g.num_vertices().min(labels.len());
                if (*src as usize) >= labels.len() {
                    return BTreeMap::new();
                }
                let root = labels[*src as usize];
                labels[..n]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| l == root)
                    .map(|(v, _)| (v as u32, 1u64))
                    .collect()
            }
            Maintainer::WindowEdges { window } => {
                let count = present_window_edges(g, window).len() as u64;
                [(0u32, count)].into_iter().collect()
            }
            Maintainer::WindowTriangles { window } => {
                let count = window_triangles(&present_window_edges(g, window));
                [(0u32, count)].into_iter().collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_gen::Csr;

    fn sym(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
            .collect()
    }

    /// Drives a maintainer and the oracle through the same batch stream and
    /// checks they agree at every step.
    fn assert_tracks_oracle(query: StandingQuery, n: usize, stream: &[(BatchKind, Vec<Edge>)]) {
        let mut edges: Vec<Edge> = Vec::new();
        let g0 = Csr::from_edges(n, &edges);
        let mut m = Maintainer::new(&query, &g0);
        let mut oracle_window = BatchWindow::new(query.window().unwrap_or(1));
        assert_eq!(m.materialize(&g0), query.oracle(&g0, &oracle_window));
        for (seq, (kind, batch)) in stream.iter().enumerate() {
            let seq = seq as u64 + 1;
            match kind {
                BatchKind::Insert => edges.extend_from_slice(batch),
                BatchKind::Delete => {
                    edges.retain(|e| !batch.iter().any(|d| d.src == e.src && d.dst == e.dst))
                }
            }
            let g = Csr::from_edges(n, &edges);
            m.apply(&g, seq, *kind, batch, false);
            oracle_window.push(seq, *kind, batch);
            assert_eq!(
                m.materialize(&g),
                query.oracle(&g, &oracle_window),
                "divergence at seq {seq} for {query:?}"
            );
        }
    }

    #[test]
    fn khop_tracks_oracle_through_inserts_and_deletes() {
        assert_tracks_oracle(
            StandingQuery::KHop { src: 0, k: 2 },
            6,
            &[
                (BatchKind::Insert, sym(&[(0, 1), (1, 2), (2, 3)])),
                (BatchKind::Insert, sym(&[(0, 3), (3, 4)])),
                (BatchKind::Delete, sym(&[(0, 3)])),
                (BatchKind::Insert, sym(&[(4, 5)])),
            ],
        );
    }

    #[test]
    fn membership_tracks_oracle_through_inserts_and_deletes() {
        assert_tracks_oracle(
            StandingQuery::ComponentMembership { src: 2 },
            6,
            &[
                (BatchKind::Insert, sym(&[(0, 1), (2, 3)])),
                (BatchKind::Insert, sym(&[(1, 2)])),
                (BatchKind::Delete, sym(&[(1, 2)])),
                (BatchKind::Insert, sym(&[(3, 4), (4, 5)])),
            ],
        );
    }

    #[test]
    fn windowed_counts_track_oracle_with_expiry() {
        let stream = vec![
            (BatchKind::Insert, sym(&[(0, 1), (1, 2), (0, 2)])),
            (BatchKind::Insert, sym(&[(2, 3)])),
            (BatchKind::Delete, sym(&[(0, 2)])),
            (BatchKind::Insert, sym(&[(3, 4)])),
            (BatchKind::Insert, sym(&[(4, 5)])),
        ];
        assert_tracks_oracle(StandingQuery::WindowedEdgeCount { window: 2 }, 6, &stream);
        assert_tracks_oracle(
            StandingQuery::WindowedTriangleCount { window: 3 },
            6,
            &stream,
        );
    }

    #[test]
    fn refresh_rebuilds_from_snapshot() {
        let edges = sym(&[(0, 1), (1, 2)]);
        let g = Csr::from_edges(4, &edges);
        let mut m = Maintainer::new(
            &StandingQuery::KHop { src: 0, k: 3 },
            &Csr::from_edges(4, &[]),
        );
        // Skip apply entirely: refresh alone must converge to the snapshot.
        m.refresh(&g);
        assert_eq!(
            m.materialize(&g),
            StandingQuery::KHop { src: 0, k: 3 }.oracle(&g, &BatchWindow::new(1))
        );
    }
}
