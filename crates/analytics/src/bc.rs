//! Single-source betweenness centrality, Brandes' algorithm (paper §6.3,
//! Fig. 13).
//!
//! Level-synchronous forward sweep counting shortest paths, then a pull-based
//! backward sweep accumulating dependencies — both phases parallel over the
//! vertices of each level, with no atomics in the numeric phases (each phase
//! pulls from the already-finalized neighboring level).

use std::sync::atomic::{AtomicU32, Ordering};

use lsgraph_api::Graph;
use rayon::prelude::*;

/// Sentinel depth for "unreached".
const UNSET: u32 = u32::MAX;

/// Brandes single-source dependency scores from `src` on a symmetric graph.
pub fn betweenness<G: Graph + ?Sized>(g: &G, src: u32) -> Vec<f64> {
    let _k = lsgraph_api::kernel_scope("bc");
    let n = g.num_vertices();
    let depth: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    depth[src as usize].store(0, Ordering::Relaxed);
    // Forward: build BFS levels.
    let mut levels: Vec<Vec<u32>> = vec![vec![src]];
    loop {
        let cur = levels.last().expect("levels never empty");
        let d = (levels.len() - 1) as u32;
        let next: Vec<u32> = cur
            .par_iter()
            .fold(Vec::new, |mut acc, &v| {
                g.for_each_neighbor(v, &mut |u| {
                    if depth[u as usize]
                        .compare_exchange(UNSET, d + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        acc.push(u);
                    }
                });
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }
    let depth: Vec<u32> = depth.into_iter().map(AtomicU32::into_inner).collect();
    // Sigma (shortest-path counts), pulled level by level.
    let mut sigma = vec![0.0f64; n];
    sigma[src as usize] = 1.0;
    for (li, level) in levels.iter().enumerate().skip(1) {
        let d = li as u32;
        let snapshot = &sigma;
        let vals: Vec<(u32, f64)> = level
            .par_iter()
            .map(|&v| {
                let mut s = 0.0;
                g.for_each_neighbor(v, &mut |u| {
                    if depth[u as usize] == d - 1 {
                        s += snapshot[u as usize];
                    }
                });
                (v, s)
            })
            .collect();
        for (v, s) in vals {
            sigma[v as usize] = s;
        }
    }
    // Backward: delta pulled from the deeper level.
    let mut delta = vec![0.0f64; n];
    for (li, level) in levels.iter().enumerate().rev() {
        let d = li as u32;
        let snapshot = &delta;
        let sigma_ref = &sigma;
        let depth_ref = &depth;
        let vals: Vec<(u32, f64)> = level
            .par_iter()
            .map(|&v| {
                let mut acc = 0.0;
                g.for_each_neighbor(v, &mut |w| {
                    if depth_ref[w as usize] == d + 1 && sigma_ref[w as usize] > 0.0 {
                        acc += sigma_ref[v as usize] / sigma_ref[w as usize]
                            * (1.0 + snapshot[w as usize]);
                    }
                });
                (v, acc)
            })
            .collect();
        for (v, a) in vals {
            delta[v as usize] = a;
        }
    }
    delta[src as usize] = 0.0;
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::Edge;
    use lsgraph_gen::Csr;

    fn sym(pairs: &[(u32, u32)], n: usize) -> Csr {
        let mut es = Vec::new();
        for &(a, b) in pairs {
            es.push(Edge::new(a, b));
            es.push(Edge::new(b, a));
        }
        Csr::from_edges(n, &es)
    }

    #[test]
    fn path_dependencies() {
        // Path 0-1-2-3: from source 0, delta(1) = 2, delta(2) = 1, delta(3)=0.
        let g = sym(&[(0, 1), (1, 2), (2, 3)], 4);
        let d = betweenness(&g, 0);
        assert!((d[1] - 2.0).abs() < 1e-12, "{d:?}");
        assert!((d[2] - 1.0).abs() < 1e-12);
        assert!(d[3].abs() < 1e-12);
        assert!(d[0].abs() < 1e-12);
    }

    #[test]
    fn diamond_splits_paths() {
        // 0 -> {1,2} -> 3: two shortest paths to 3, each middle carries 0.5.
        let g = sym(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let d = betweenness(&g, 0);
        assert!((d[1] - 0.5).abs() < 1e-12, "{d:?}");
        assert!((d[2] - 0.5).abs() < 1e-12);
        assert!(d[3].abs() < 1e-12);
    }

    #[test]
    fn star_center_carries_all() {
        let g = sym(&[(0, 1), (0, 2), (0, 3), (0, 4)], 5);
        let d = betweenness(&g, 1);
        // From leaf 1: center 0 lies on all paths to 2, 3, 4.
        assert!((d[0] - 3.0).abs() < 1e-12, "{d:?}");
    }

    #[test]
    fn disconnected_is_zero() {
        let g = sym(&[(0, 1)], 4);
        let d = betweenness(&g, 0);
        assert!(d[2].abs() < 1e-12 && d[3].abs() < 1e-12);
    }
}
