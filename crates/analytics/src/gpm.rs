//! Graph pattern mining kernels beyond triangles.
//!
//! The paper's introduction motivates ordered neighbors with set-centric
//! GPM systems (§1: "cutting-edge GPM systems can efficiently process set
//! computations"). These kernels are the standard next rungs of that
//! ladder: per-vertex clustering coefficients, 4-cycles (rectangles), and
//! 4-cliques — all built from sorted-adjacency intersections, i.e. exactly
//! the access pattern LSGraph's representation serves.
//!
//! All kernels assume a symmetric graph and ignore self loops.

use lsgraph_api::Graph;
use rayon::prelude::*;

/// Degree-then-id rank used to orient edges so each pattern is counted at a
/// unique anchor.
#[inline]
fn rank<G: Graph + ?Sized>(g: &G, v: u32) -> (usize, u32) {
    (g.degree(v), v)
}

/// Sorted intersection into a fresh vector.
fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            core::cmp::Ordering::Less => i += 1,
            core::cmp::Ordering::Greater => j += 1,
            core::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Per-vertex triangle counts (each triangle counted at all three corners).
pub fn local_triangles<G: Graph + ?Sized>(g: &G) -> Vec<u64> {
    let n = g.num_vertices();
    let adj: Vec<Vec<u32>> = (0..n as u32)
        .into_par_iter()
        .map(|v| {
            let mut ns = g.neighbors(v);
            ns.retain(|&u| u != v);
            ns
        })
        .collect();
    (0..n)
        .into_par_iter()
        .map(|v| {
            let nv = &adj[v];
            let mut twice = 0u64;
            for &u in nv {
                twice += intersect(nv, &adj[u as usize]).len() as u64;
            }
            twice / 2
        })
        .collect()
}

/// Per-vertex clustering coefficients: `2 * tri(v) / (d(v) * (d(v) - 1))`,
/// 0.0 for degree < 2 (self loops excluded from the degree).
pub fn clustering_coefficients<G: Graph + ?Sized>(g: &G) -> Vec<f64> {
    let tri = local_triangles(g);
    (0..g.num_vertices() as u32)
        .into_par_iter()
        .map(|v| {
            let mut d = 0u64;
            g.for_each_neighbor(v, &mut |u| {
                if u != v {
                    d += 1;
                }
            });
            if d < 2 {
                0.0
            } else {
                2.0 * tri[v as usize] as f64 / (d * (d - 1)) as f64
            }
        })
        .collect()
}

/// Global average clustering coefficient over vertices with degree ≥ 2.
pub fn average_clustering<G: Graph + ?Sized>(g: &G) -> f64 {
    let cc = clustering_coefficients(g);
    let eligible: Vec<f64> = (0..g.num_vertices() as u32)
        .filter(|&v| {
            let mut d = 0;
            g.for_each_neighbor(v, &mut |u| {
                if u != v {
                    d += 1;
                }
            });
            d >= 2
        })
        .map(|v| cc[v as usize])
        .collect();
    if eligible.is_empty() {
        0.0
    } else {
        eligible.iter().sum::<f64>() / eligible.len() as f64
    }
}

/// Counts distinct 4-cycles (rectangles) by wedge aggregation: each cycle is
/// counted exactly once at its minimum-rank corner.
pub fn count_4cycles<G: Graph + ?Sized>(g: &G) -> u64 {
    let n = g.num_vertices();
    let adj: Vec<Vec<u32>> = (0..n as u32)
        .into_par_iter()
        .map(|v| {
            let mut ns = g.neighbors(v);
            ns.retain(|&u| u != v);
            ns
        })
        .collect();
    (0..n as u32)
        .into_par_iter()
        .map(|u| {
            let ru = rank(g, u);
            // Wedges u - v - w with rank(v) > rank(u) and rank(w) > rank(u):
            // every pair of wedges sharing (u, w) closes a rectangle.
            let mut wedges: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
            for &v in &adj[u as usize] {
                if rank(g, v) <= ru {
                    continue;
                }
                for &w in &adj[v as usize] {
                    if w != u && rank(g, w) > ru {
                        *wedges.entry(w).or_insert(0) += 1;
                    }
                }
            }
            wedges.values().map(|&c| c * (c - 1) / 2).sum::<u64>()
        })
        .sum()
}

/// Counts distinct 4-cliques by nested ordered intersections: each clique is
/// anchored at its rank-ordered first pair.
pub fn count_4cliques<G: Graph + ?Sized>(g: &G) -> u64 {
    let n = g.num_vertices();
    // Degree-ordered directed adjacency ("higher" lists), as in TC.
    let higher: Vec<Vec<u32>> = (0..n as u32)
        .into_par_iter()
        .map(|v| {
            let rv = rank(g, v);
            let mut out = Vec::new();
            g.for_each_neighbor(v, &mut |u| {
                if u != v && rank(g, u) > rv {
                    out.push(u);
                }
            });
            out
        })
        .collect();
    (0..n)
        .into_par_iter()
        .map(|v| {
            let hv = &higher[v];
            let mut count = 0u64;
            for &u in hv {
                // Triangle candidates adjacent to both v and u, all ranked
                // above u (hence above v).
                let tri = intersect(hv, &higher[u as usize]);
                // Every adjacent unordered pair inside `tri` closes a
                // 4-clique anchored at (v, u). `tri` is id-sorted while
                // `higher` lists are rank-filtered, so check both directions.
                for (i, &w) in tri.iter().enumerate() {
                    for &s in &tri[i + 1..] {
                        if higher[w as usize].binary_search(&s).is_ok()
                            || higher[s as usize].binary_search(&w).is_ok()
                        {
                            count += 1;
                        }
                    }
                }
            }
            count
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::Edge;
    use lsgraph_gen::Csr;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn sym(pairs: &[(u32, u32)], n: usize) -> Csr {
        let mut es = Vec::new();
        for &(a, b) in pairs {
            es.push(Edge::new(a, b));
            es.push(Edge::new(b, a));
        }
        Csr::from_edges(n, &es)
    }

    fn complete(n: u32) -> Csr {
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                pairs.push((a, b));
            }
        }
        sym(&pairs, n as usize)
    }

    #[test]
    fn clustering_on_triangle_with_tail() {
        let g = sym(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        let cc = clustering_coefficients(&g);
        assert!((cc[0] - 1.0).abs() < 1e-12);
        assert!((cc[1] - 1.0).abs() < 1e-12);
        // Vertex 2 has 3 neighbors, 1 closed pair out of 3.
        assert!((cc[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cc[3], 0.0);
    }

    #[test]
    fn clique_metrics() {
        let g = complete(6);
        assert!(clustering_coefficients(&g)
            .iter()
            .all(|&c| (c - 1.0).abs() < 1e-12));
        // K6: C(6,4) = 15 four-cliques; rectangles = 3 * C(6,4) = 45.
        assert_eq!(count_4cliques(&g), 15);
        assert_eq!(count_4cycles(&g), 45);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn square_has_one_4cycle_no_cliques() {
        let g = sym(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(count_4cycles(&g), 1);
        assert_eq!(count_4cliques(&g), 0);
        assert!(clustering_coefficients(&g).iter().all(|&c| c == 0.0));
    }

    #[test]
    fn random_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(123);
        let n = 30u32;
        let pairs: Vec<(u32, u32)> = (0..120)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .filter(|&(a, b)| a != b)
            .collect();
        let g = sym(&pairs, n as usize);
        let mut adj = vec![false; (n * n) as usize];
        for &(a, b) in &pairs {
            adj[(a * n + b) as usize] = true;
            adj[(b * n + a) as usize] = true;
        }
        let a = |x: u32, y: u32| adj[(x * n + y) as usize];
        // Brute-force 4-cliques.
        let mut cliques = 0u64;
        for p in 0..n {
            for q in p + 1..n {
                if !a(p, q) {
                    continue;
                }
                for r in q + 1..n {
                    if !(a(p, r) && a(q, r)) {
                        continue;
                    }
                    for s in r + 1..n {
                        if a(p, s) && a(q, s) && a(r, s) {
                            cliques += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(count_4cliques(&g), cliques);
        // Brute-force 4-cycles: ordered quadruples / automorphisms (8).
        let mut cycles8 = 0u64;
        for p in 0..n {
            for q in 0..n {
                if p == q || !a(p, q) {
                    continue;
                }
                for r in 0..n {
                    if r == p || r == q || !a(q, r) {
                        continue;
                    }
                    for s in 0..n {
                        if s == p || s == q || s == r || !(a(r, s) && a(s, p)) {
                            continue;
                        }
                        cycles8 += 1;
                    }
                }
            }
        }
        assert_eq!(count_4cycles(&g), cycles8 / 8);
        // Local triangles vs brute force.
        let tri = local_triangles(&g);
        for v in 0..n {
            let mut t = 0u64;
            for x in 0..n {
                for y in x + 1..n {
                    if a(v, x) && a(v, y) && a(x, y) && x != v && y != v {
                        t += 1;
                    }
                }
            }
            assert_eq!(tri[v as usize], t, "vertex {v}");
        }
    }

    #[test]
    fn empty_and_isolated() {
        let g = sym(&[], 3);
        assert_eq!(count_4cycles(&g), 0);
        assert_eq!(count_4cliques(&g), 0);
        assert_eq!(average_clustering(&g), 0.0);
        assert_eq!(local_triangles(&g), vec![0, 0, 0]);
    }
}
