//! Incremental BFS maintenance over a streaming graph.
//!
//! The paper's motivation for abandoning CSR's sequential edge-array scans
//! (§3.1) is that "most recent streaming graph systems employ incremental
//! computation", whose accesses into the adjacency structure arrive in
//! random order. This module is such a consumer: it maintains single-source
//! BFS distances across insertion batches, re-relaxing only the affected
//! region instead of recomputing from scratch — and issuing exactly the
//! random per-vertex neighbor probes the RIA/HITree layout is designed to
//! serve.
//!
//! Edge *insertions* only ever shorten distances, so the repair is a
//! monotone relaxation seeded by the endpoints of the new edges. Deletions
//! can lengthen distances and require (partial) recomputation; this
//! maintainer recomputes on deletion, which matches how trimming-based
//! systems (e.g. KickStarter) fall back on unsafe deletions.

use std::sync::atomic::{AtomicU32, Ordering};

use lsgraph_api::{Edge, Graph};

use crate::edge_map::edge_map;
use crate::subset::VertexSubset;

/// Sentinel distance for unreachable vertices.
pub const INF: u32 = u32::MAX;

/// Maintains BFS hop distances from a fixed source across updates.
#[derive(Clone, Debug)]
pub struct IncrementalBfs {
    src: u32,
    dist: Vec<u32>,
}

impl IncrementalBfs {
    /// Runs the initial BFS from `src`.
    pub fn new<G: Graph + ?Sized>(g: &G, src: u32) -> Self {
        let mut me = IncrementalBfs {
            src,
            dist: Vec::new(),
        };
        me.recompute(g);
        me
    }

    /// The maintained source.
    pub fn source(&self) -> u32 {
        self.src
    }

    /// Current distances (hops; [`INF`] = unreachable).
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    /// Full recomputation (used at construction and after deletions).
    pub fn recompute<G: Graph + ?Sized>(&mut self, g: &G) {
        let n = g.num_vertices();
        let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(INF)).collect();
        dist[self.src as usize].store(0, Ordering::Relaxed);
        let mut frontier = VertexSubset::single(self.src);
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            frontier = edge_map(
                g,
                &frontier,
                |_s, d| {
                    dist[d as usize]
                        .compare_exchange(INF, level, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                },
                |d| dist[d as usize].load(Ordering::Relaxed) == INF,
            );
        }
        self.dist = dist.into_iter().map(AtomicU32::into_inner).collect();
    }

    /// Repairs distances after `batch` was inserted into `g` (call after the
    /// graph update; `g` must already contain the batch).
    ///
    /// Only vertices whose distance actually improves are re-expanded, so a
    /// batch that touches a settled region costs near nothing.
    pub fn on_insert<G: Graph + ?Sized>(&mut self, g: &G, batch: &[Edge]) {
        let n = g.num_vertices();
        if n > self.dist.len() {
            self.dist.resize(n, INF);
        }
        let dist: Vec<AtomicU32> = std::mem::take(&mut self.dist)
            .into_iter()
            .map(AtomicU32::new)
            .collect();
        // Seed: endpoints improved directly by a new edge.
        let mut seeds: Vec<u32> = Vec::new();
        for e in batch {
            let (s, d) = (e.src as usize, e.dst as usize);
            if s >= n || d >= n {
                continue;
            }
            let ds = dist[s].load(Ordering::Relaxed);
            if ds != INF && ds + 1 < dist[d].load(Ordering::Relaxed) {
                dist[d].store(ds + 1, Ordering::Relaxed);
                seeds.push(e.dst);
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        let mut frontier = VertexSubset::Sparse(seeds);
        // Monotone relaxation: propagate improvements until quiescent.
        while !frontier.is_empty() {
            frontier = edge_map(
                g,
                &frontier,
                |s, d| {
                    let nd = dist[s as usize].load(Ordering::Relaxed).saturating_add(1);
                    let mut cur = dist[d as usize].load(Ordering::Relaxed);
                    let mut improved = false;
                    while nd < cur {
                        match dist[d as usize].compare_exchange_weak(
                            cur,
                            nd,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => {
                                improved = true;
                                break;
                            }
                            Err(c) => cur = c,
                        }
                    }
                    improved
                },
                |_| true,
            );
        }
        self.dist = dist.into_iter().map(AtomicU32::into_inner).collect();
    }

    /// Handles a deletion batch: falls back to full recomputation (the safe
    /// strategy for non-monotone updates).
    pub fn on_delete<G: Graph + ?Sized>(&mut self, g: &G) {
        self.recompute(g);
    }
}

/// Maintains connected components across insertion batches with a union-find
/// forest — O(α) per inserted edge instead of a full label-propagation pass.
///
/// Insertions only merge components (monotone), so union-find is exact;
/// deletions can split components and trigger a rebuild, mirroring
/// [`IncrementalBfs`]'s strategy.
#[derive(Clone, Debug)]
pub struct IncrementalCc {
    parent: Vec<u32>,
}

impl IncrementalCc {
    /// Builds the forest for the current graph.
    pub fn new<G: Graph + ?Sized>(g: &G) -> Self {
        let mut cc = IncrementalCc {
            parent: (0..g.num_vertices() as u32).collect(),
        };
        for v in 0..g.num_vertices() as u32 {
            g.for_each_neighbor(v, &mut |u| cc.union(v, u));
        }
        cc
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Union by smaller root id keeps labels deterministic.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi as usize] = lo;
        }
    }

    /// Applies an insertion batch (edges may reference ids beyond the
    /// current forest; it grows as needed).
    pub fn on_insert(&mut self, batch: &[Edge]) {
        if let Some(max) = batch.iter().map(|e| e.src.max(e.dst)).max() {
            if max as usize >= self.parent.len() {
                let start = self.parent.len() as u32;
                self.parent.extend(start..=max);
            }
        }
        for e in batch {
            self.union(e.src, e.dst);
        }
    }

    /// Deletions may split components: rebuild from the post-delete graph.
    pub fn on_delete<G: Graph + ?Sized>(&mut self, g: &G) {
        *self = IncrementalCc::new(g);
    }

    /// Component labels in the same canonical form as
    /// [`connected_components`](crate::connected_components): every vertex
    /// labelled with its component's minimum vertex id.
    pub fn labels(&mut self) -> Vec<u32> {
        let n = self.parent.len();
        let mut out = vec![0u32; n];
        for v in 0..n as u32 {
            out[v as usize] = self.find(v);
        }
        // Roots are already component minima because unions keep the
        // smaller id as root and path compression preserves roots.
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_gen::Csr;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn incremental_cc_matches_label_propagation() {
        let mut rng = SmallRng::seed_from_u64(19);
        let n = 400u32;
        let mut edges: Vec<Edge> = Vec::new();
        let mut cc = IncrementalCc::new(&Csr::from_edges(n as usize, &edges));
        for _ in 0..12 {
            let batch: Vec<Edge> = (0..40)
                .flat_map(|_| {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    [Edge::new(a, b), Edge::new(b, a)]
                })
                .collect();
            edges.extend_from_slice(&batch);
            cc.on_insert(&batch);
            let g = Csr::from_edges(n as usize, &edges);
            assert_eq!(cc.labels(), crate::connected_components(&g));
        }
    }

    #[test]
    fn incremental_cc_rebuild_after_delete() {
        // Two components joined by a bridge, then the bridge is removed.
        let full = [
            Edge::new(0, 1),
            Edge::new(1, 0),
            Edge::new(1, 2),
            Edge::new(2, 1),
        ];
        let g_full = Csr::from_edges(3, &full);
        let mut cc = IncrementalCc::new(&g_full);
        assert_eq!(cc.labels(), vec![0, 0, 0]);
        let g_cut = Csr::from_edges(3, &full[..2]);
        cc.on_delete(&g_cut);
        assert_eq!(cc.labels(), vec![0, 0, 2]);
    }

    #[test]
    fn incremental_cc_grows_for_new_ids() {
        let mut cc = IncrementalCc::new(&Csr::from_edges(2, &[]));
        cc.on_insert(&[Edge::new(5, 1)]);
        let labels = cc.labels();
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[5], 1);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[4], 4);
    }

    fn sym(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
            .collect()
    }

    #[test]
    fn shortcut_edge_improves_distances() {
        // Path 0-1-2-3-4; then add shortcut 0-4.
        let mut edges = sym(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let g = Csr::from_edges(5, &edges);
        let mut inc = IncrementalBfs::new(&g, 0);
        assert_eq!(inc.distances(), &[0, 1, 2, 3, 4]);
        let batch = sym(&[(0, 4)]);
        edges.extend_from_slice(&batch);
        let g2 = Csr::from_edges(5, &edges);
        inc.on_insert(&g2, &batch);
        assert_eq!(inc.distances(), &[0, 1, 2, 2, 1]);
    }

    #[test]
    fn connecting_a_new_component() {
        let mut edges = sym(&[(0, 1), (3, 4)]);
        let g = Csr::from_edges(5, &edges);
        let mut inc = IncrementalBfs::new(&g, 0);
        assert_eq!(inc.distances(), &[0, 1, INF, INF, INF]);
        let batch = sym(&[(1, 3)]);
        edges.extend_from_slice(&batch);
        let g2 = Csr::from_edges(5, &edges);
        inc.on_insert(&g2, &batch);
        assert_eq!(inc.distances(), &[0, 1, INF, 2, 3]);
    }

    #[test]
    fn random_stream_matches_recompute() {
        let mut rng = SmallRng::seed_from_u64(17);
        let n = 300u32;
        let mut edges = sym(&(0..80)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect::<Vec<_>>());
        let g = Csr::from_edges(n as usize, &edges);
        let mut inc = IncrementalBfs::new(&g, 0);
        for _ in 0..10 {
            let batch = sym(&(0..30)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect::<Vec<_>>());
            edges.extend_from_slice(&batch);
            let g = Csr::from_edges(n as usize, &edges);
            inc.on_insert(&g, &batch);
            let fresh = IncrementalBfs::new(&g, 0);
            assert_eq!(inc.distances(), fresh.distances());
        }
    }

    #[test]
    fn deletion_falls_back_to_recompute() {
        let edges = sym(&[(0, 1), (1, 2), (0, 2)]);
        let g = Csr::from_edges(3, &edges);
        let mut inc = IncrementalBfs::new(&g, 0);
        assert_eq!(inc.distances(), &[0, 1, 1]);
        // Remove 0-2: distance of 2 grows to 2.
        let g2 = Csr::from_edges(3, &sym(&[(0, 1), (1, 2)]));
        inc.on_delete(&g2);
        assert_eq!(inc.distances(), &[0, 1, 2]);
    }
}
