//! Triangle counting by sorted-adjacency intersection (paper §6.3,
//! Table 2).
//!
//! The paper's TC first copies each vertex's edges into flat arrays (the
//! *Traversal* phase, whose share of total time Table 2 reports), then
//! counts triangles by intersecting the degree-ordered directed adjacency
//! lists — the set-computation pattern that motivates keeping neighbors
//! sorted.

use std::time::{Duration, Instant};

use lsgraph_api::Graph;
use rayon::prelude::*;

/// Result of [`triangle_count`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TcResult {
    /// Number of distinct triangles.
    pub triangles: u64,
    /// Time spent flattening adjacency into arrays (Table 2 "Traversal").
    pub traversal: Duration,
    /// Total time including counting.
    pub total: Duration,
}

/// Size of the two sorted u32 slices' intersection.
#[inline]
fn intersect_count(a: &[u32], b: &[u32]) -> u64 {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            core::cmp::Ordering::Less => i += 1,
            core::cmp::Ordering::Greater => j += 1,
            core::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Counts distinct triangles by *streaming* set intersection over lazy
/// neighbor iterators — no adjacency materialization at all.
///
/// This is the paper's GPM argument in its purest form: ordered neighbor
/// iteration makes the intersection a merge join directly over the storage
/// layout. It trades the flat-array locality of [`triangle_count`] for zero
/// traversal/copy phase; the `structures` bench compares the two.
pub fn triangle_count_streaming<G: lsgraph_api::IterableGraph + Sync>(g: &G) -> u64 {
    let _k = lsgraph_api::kernel_scope("tc_streaming");
    let n = g.num_vertices();
    let rank = |v: u32| (g.degree(v), v);
    (0..n as u32)
        .into_par_iter()
        .map(|v| {
            let rv = rank(v);
            let mut count = 0u64;
            for u in g.neighbor_iter(v) {
                if u == v || rank(u) <= rv {
                    continue;
                }
                // Merge-join N(v) with N(u), restricted to higher-ranked
                // third vertices.
                let mut a = g.neighbor_iter(v).filter(|&w| w != v && rank(w) > rv);
                let mut b = g.neighbor_iter(u).filter(|&w| w != u && rank(w) > rank(u));
                let mut x = a.next();
                let mut y = b.next();
                while let (Some(xa), Some(yb)) = (x, y) {
                    match xa.cmp(&yb) {
                        core::cmp::Ordering::Less => x = a.next(),
                        core::cmp::Ordering::Greater => y = b.next(),
                        core::cmp::Ordering::Equal => {
                            count += 1;
                            x = a.next();
                            y = b.next();
                        }
                    }
                }
            }
            count
        })
        .sum()
}

/// Counts distinct triangles of a symmetric graph.
pub fn triangle_count<G: Graph + ?Sized>(g: &G) -> TcResult {
    let _k = lsgraph_api::kernel_scope("tc");
    let start = Instant::now();
    let n = g.num_vertices();
    // Traversal phase: flatten each vertex's neighbors into an array,
    // keeping only the degree-ordered "higher" endpoints so each triangle is
    // counted exactly once at its smallest vertex.
    let rank = |v: u32| (g.degree(v), v);
    let higher: Vec<Vec<u32>> = (0..n as u32)
        .into_par_iter()
        .map(|v| {
            let rv = rank(v);
            let mut out = Vec::new();
            g.for_each_neighbor(v, &mut |u| {
                if u != v && rank(u) > rv {
                    out.push(u);
                }
            });
            out
        })
        .collect();
    let traversal = start.elapsed();
    let triangles: u64 = (0..n)
        .into_par_iter()
        .map(|v| {
            let hv = &higher[v];
            let mut count = 0;
            for &u in hv {
                count += intersect_count(hv, &higher[u as usize]);
            }
            count
        })
        .sum();
    TcResult {
        triangles,
        traversal,
        total: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::Edge;
    use lsgraph_gen::Csr;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn sym(pairs: &[(u32, u32)], n: usize) -> Csr {
        let mut es = Vec::new();
        for &(a, b) in pairs {
            es.push(Edge::new(a, b));
            es.push(Edge::new(b, a));
        }
        Csr::from_edges(n, &es)
    }

    #[test]
    fn single_triangle() {
        let g = sym(&[(0, 1), (1, 2), (0, 2)], 3);
        assert_eq!(triangle_count(&g).triangles, 1);
    }

    #[test]
    fn square_has_no_triangle() {
        let g = sym(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4);
        assert_eq!(triangle_count(&g).triangles, 0);
    }

    #[test]
    fn complete_graph_k6() {
        let mut pairs = Vec::new();
        for a in 0..6u32 {
            for b in a + 1..6 {
                pairs.push((a, b));
            }
        }
        let g = sym(&pairs, 6);
        // C(6,3) = 20 triangles.
        assert_eq!(triangle_count(&g).triangles, 20);
    }

    #[test]
    fn self_loops_ignored() {
        let g = sym(&[(0, 1), (1, 2), (0, 2), (0, 0), (1, 1)], 3);
        assert_eq!(triangle_count(&g).triangles, 1);
    }

    #[test]
    fn random_matches_brute_force() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 60u32;
        let pairs: Vec<(u32, u32)> = (0..300)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .filter(|&(a, b)| a != b)
            .collect();
        let g = sym(&pairs, n as usize);
        // Brute force over vertex triples on the adjacency matrix.
        let mut adj = vec![false; (n * n) as usize];
        for &(a, b) in &pairs {
            adj[(a * n + b) as usize] = true;
            adj[(b * n + a) as usize] = true;
        }
        let mut expect = 0u64;
        for a in 0..n {
            for b in a + 1..n {
                if !adj[(a * n + b) as usize] {
                    continue;
                }
                for c in b + 1..n {
                    if adj[(a * n + c) as usize] && adj[(b * n + c) as usize] {
                        expect += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g).triangles, expect);
    }

    #[test]
    fn streaming_matches_materialized() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200u32;
        let pairs: Vec<(u32, u32)> = (0..1_500)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .filter(|&(a, b)| a != b)
            .collect();
        let g = sym(&pairs, n as usize);
        let want = triangle_count(&g).triangles;
        assert!(want > 0);
        assert_eq!(triangle_count_streaming(&g), want);
    }

    #[test]
    fn streaming_on_cliques_and_self_loops() {
        let g = sym(&[(0, 1), (1, 2), (0, 2), (1, 1), (2, 2)], 3);
        assert_eq!(triangle_count_streaming(&g), 1);
    }

    #[test]
    fn timings_populated() {
        let g = sym(&[(0, 1), (1, 2), (0, 2)], 3);
        let r = triangle_count(&g);
        assert!(r.total >= r.traversal);
    }
}
