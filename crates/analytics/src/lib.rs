//! Ligra-style graph analytics over any [`lsgraph_api::Graph`].
//!
//! LSGraph exposes analytics through an `EdgeMap` primitive (paper §5,
//! "Interface", following Ligra); the kernels here are the five the paper
//! evaluates: BFS, single-source betweenness centrality (BC), PageRank (PR),
//! connected components (CC), and triangle counting (TC).
//!
//! All kernels treat the graph as **symmetric** (the paper evaluates
//! symmetrized datasets): pull-style phases read `for_each_neighbor` as the
//! in-neighbor list, which coincides with out-neighbors exactly when every
//! edge has its mirror.

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod edge_map;
pub mod gpm;
pub mod incremental;
pub mod kcore;
pub mod pagerank;
pub mod snapshot;
pub mod subset;
pub mod tc;

pub use bc::betweenness;
pub use bfs::bfs;
pub use cc::connected_components;
pub use edge_map::edge_map;
pub use gpm::{
    average_clustering, clustering_coefficients, count_4cliques, count_4cycles, local_triangles,
};
pub use incremental::{IncrementalBfs, IncrementalCc};
pub use kcore::{degeneracy, kcore};
pub use pagerank::pagerank;
pub use snapshot::{
    bfs_snapshot, connected_components_snapshot, freeze, kcore_snapshot, pagerank_snapshot,
    triangle_count_snapshot,
};
pub use subset::VertexSubset;
pub use tc::{triangle_count, triangle_count_streaming, TcResult};
