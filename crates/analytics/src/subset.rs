//! Vertex subsets with sparse/dense dual representation (Ligra).

/// A subset of vertices, stored sparsely (id list) or densely (bitmap).
#[derive(Clone, Debug)]
pub enum VertexSubset {
    /// Explicit vertex ids (unsorted, duplicate-free).
    Sparse(Vec<u32>),
    /// Membership bitmap with a cached population count.
    Dense(Vec<bool>, usize),
}

impl VertexSubset {
    /// A singleton subset.
    pub fn single(v: u32) -> Self {
        VertexSubset::Sparse(vec![v])
    }

    /// An empty subset.
    pub fn empty() -> Self {
        VertexSubset::Sparse(Vec::new())
    }

    /// The full vertex set over `n` vertices.
    pub fn full(n: usize) -> Self {
        VertexSubset::Dense(vec![true; n], n)
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse(v) => v.len(),
            VertexSubset::Dense(_, c) => *c,
        }
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test (`n` is required context for sparse sets only in
    /// debug assertions).
    pub fn contains(&self, v: u32) -> bool {
        match self {
            VertexSubset::Sparse(ids) => ids.contains(&v),
            VertexSubset::Dense(bits, _) => bits[v as usize],
        }
    }

    /// Converts to a dense bitmap over `n` vertices.
    pub fn to_dense(&self, n: usize) -> Vec<bool> {
        match self {
            VertexSubset::Sparse(ids) => {
                let mut bits = vec![false; n];
                for &v in ids {
                    bits[v as usize] = true;
                }
                bits
            }
            VertexSubset::Dense(bits, _) => bits.clone(),
        }
    }

    /// Converts to an id list.
    pub fn to_sparse(&self) -> Vec<u32> {
        match self {
            VertexSubset::Sparse(ids) => ids.clone(),
            VertexSubset::Dense(bits, _) => bits
                .iter()
                .enumerate()
                .filter_map(|(i, &b)| b.then_some(i as u32))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(VertexSubset::single(3).len(), 1);
        assert!(VertexSubset::empty().is_empty());
        assert_eq!(VertexSubset::full(5).len(), 5);
    }

    #[test]
    fn conversions_roundtrip() {
        let s = VertexSubset::Sparse(vec![1, 4, 2]);
        let bits = s.to_dense(6);
        assert_eq!(bits, vec![false, true, true, false, true, false]);
        let d = VertexSubset::Dense(bits, 3);
        assert_eq!(d.to_sparse(), vec![1, 2, 4]);
        assert!(d.contains(4) && !d.contains(0));
        assert!(s.contains(2) && !s.contains(3));
    }
}
