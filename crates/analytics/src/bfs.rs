//! Parallel breadth-first search (paper §6.3, Fig. 3/13).

use std::sync::atomic::{AtomicU32, Ordering};

use lsgraph_api::Graph;

use crate::edge_map::edge_map;
use crate::subset::VertexSubset;

/// Sentinel for "unvisited".
pub const UNREACHED: u32 = u32::MAX;

/// Frontier-based BFS from `src`; returns the parent of each vertex
/// ([`UNREACHED`] for unreachable ones, `src` is its own parent).
pub fn bfs<G: Graph + ?Sized>(g: &G, src: u32) -> Vec<u32> {
    let _k = lsgraph_api::kernel_scope("bfs");
    let n = g.num_vertices();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    parent[src as usize].store(src, Ordering::Relaxed);
    let mut frontier = VertexSubset::single(src);
    while !frontier.is_empty() {
        frontier = edge_map(
            g,
            &frontier,
            |s, d| {
                parent[d as usize]
                    .compare_exchange(UNREACHED, s, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            },
            |d| parent[d as usize].load(Ordering::Relaxed) == UNREACHED,
        );
    }
    parent.into_iter().map(AtomicU32::into_inner).collect()
}

/// BFS distances derived from a parent array (used for validation: parents
/// differ across engines/thread schedules, distances must not).
pub fn distances_from_parents<G: Graph + ?Sized>(g: &G, src: u32, parents: &[u32]) -> Vec<u32> {
    // Recompute distances by level-synchronous traversal restricted to
    // parent edges.
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED; n];
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (v, &p) in parents.iter().enumerate() {
        if p != UNREACHED && v as u32 != src {
            children[p as usize].push(v as u32);
        }
    }
    let mut level = vec![src];
    let mut d = 0;
    dist[src as usize] = 0;
    while !level.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for &v in &level {
            for &c in &children[v as usize] {
                dist[c as usize] = d;
                next.push(c);
            }
        }
        level = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::Edge;
    use lsgraph_gen::Csr;

    fn path(n: u32) -> Csr {
        let mut es = Vec::new();
        for v in 0..n - 1 {
            es.push(Edge::new(v, v + 1));
            es.push(Edge::new(v + 1, v));
        }
        Csr::from_edges(n as usize, &es)
    }

    #[test]
    fn bfs_on_path() {
        let g = path(6);
        let parents = bfs(&g, 0);
        assert_eq!(parents, vec![0, 0, 1, 2, 3, 4]);
        let dist = distances_from_parents(&g, 0, &parents);
        assert_eq!(dist, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let g = Csr::from_edges(4, &[Edge::new(0, 1), Edge::new(1, 0)]);
        let parents = bfs(&g, 0);
        assert_eq!(parents[2], UNREACHED);
        assert_eq!(parents[3], UNREACHED);
        assert_eq!(parents[1], 0);
    }

    #[test]
    fn bfs_distances_on_grid() {
        // 4x4 grid: distance = Manhattan distance from corner.
        let side = 4u32;
        let mut es = Vec::new();
        let id = |r: u32, c: u32| r * side + c;
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    es.push(Edge::new(id(r, c), id(r, c + 1)));
                    es.push(Edge::new(id(r, c + 1), id(r, c)));
                }
                if r + 1 < side {
                    es.push(Edge::new(id(r, c), id(r + 1, c)));
                    es.push(Edge::new(id(r + 1, c), id(r, c)));
                }
            }
        }
        let g = Csr::from_edges((side * side) as usize, &es);
        let parents = bfs(&g, 0);
        let dist = distances_from_parents(&g, 0, &parents);
        for r in 0..side {
            for c in 0..side {
                assert_eq!(dist[id(r, c) as usize], r + c, "({r},{c})");
            }
        }
    }
}
