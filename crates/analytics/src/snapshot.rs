//! Snapshot-taking kernel entry points: analytics over a frozen view.
//!
//! Every kernel in this crate is generic over [`Graph`], so it already runs
//! against an immutable snapshot handle unchanged. What this module adds is
//! the *taking*: entry points generic over [`SnapshotSource`] that flip a
//! snapshot first and run the kernel against that frozen view, so the
//! result is a function of one well-defined graph state even when the
//! source is being updated between calls.
//!
//! For analytics genuinely concurrent with writes, use [`freeze`] to obtain
//! an owned snapshot, move it to a reader thread (it is `Send + Sync +
//! Clone`), and run any kernel there while the writer keeps applying
//! batches — the pattern the `repro mixed` experiment measures.

use lsgraph_api::SnapshotSource;

use crate::tc::TcResult;

/// Flips and returns an owned snapshot of `g` — the handle to hand to
/// reader threads for analytics concurrent with a streaming writer.
pub fn freeze<S: SnapshotSource + ?Sized>(g: &S) -> S::Snapshot {
    g.snapshot()
}

/// BFS distances from `src` over a freshly frozen view of `g`.
pub fn bfs_snapshot<S: SnapshotSource + ?Sized>(g: &S, src: u32) -> Vec<u32> {
    crate::bfs(&g.snapshot(), src)
}

/// Connected-components labels over a freshly frozen view of `g`.
pub fn connected_components_snapshot<S: SnapshotSource + ?Sized>(g: &S) -> Vec<u32> {
    crate::connected_components(&g.snapshot())
}

/// PageRank over a freshly frozen view of `g` (`iters` power iterations,
/// damping `d`).
pub fn pagerank_snapshot<S: SnapshotSource + ?Sized>(g: &S, iters: usize, d: f64) -> Vec<f64> {
    crate::pagerank(&g.snapshot(), iters, d)
}

/// K-core numbers over a freshly frozen view of `g`.
pub fn kcore_snapshot<S: SnapshotSource + ?Sized>(g: &S) -> Vec<u32> {
    crate::kcore(&g.snapshot())
}

/// Triangle count over a freshly frozen view of `g`.
pub fn triangle_count_snapshot<S: SnapshotSource + ?Sized>(g: &S) -> TcResult {
    crate::triangle_count(&g.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::{DynamicGraph, Edge, Graph};
    use lsgraph_core::LsGraph;

    fn ring(n: u32) -> LsGraph {
        let mut g = LsGraph::new(n as usize);
        let edges: Vec<Edge> = (0..n).map(|v| Edge::new(v, (v + 1) % n)).collect();
        g.insert_batch_undirected(&edges);
        g
    }

    #[test]
    fn snapshot_kernels_match_live_kernels() {
        let g = ring(32);
        assert_eq!(bfs_snapshot(&g, 0), crate::bfs(&g, 0));
        assert_eq!(
            connected_components_snapshot(&g),
            crate::connected_components(&g)
        );
        assert_eq!(kcore_snapshot(&g), crate::kcore(&g));
        assert_eq!(
            triangle_count_snapshot(&g).triangles,
            crate::triangle_count(&g).triangles
        );
        let pr_snap = pagerank_snapshot(&g, 10, 0.85);
        let pr_live = crate::pagerank(&g, 10, 0.85);
        assert_eq!(pr_snap, pr_live, "same frozen input, same iterations");
    }

    #[test]
    fn frozen_view_is_immune_to_later_writes() {
        let mut g = ring(16);
        let snap = freeze(&g);
        let before = crate::bfs(&snap, 0);
        // Cut the ring after the freeze: live BFS changes, frozen doesn't.
        g.delete_batch_undirected(&[Edge::new(7, 8)]);
        assert_ne!(crate::bfs(&g, 0), before);
        assert_eq!(crate::bfs(&snap, 0), before);
        assert_eq!(snap.num_edges(), 32);
    }

    #[test]
    fn kernels_run_on_a_moved_snapshot_while_writer_continues() {
        let mut g = ring(24);
        let snap = freeze(&g);
        let handle = std::thread::spawn(move || {
            (
                crate::connected_components(&snap).iter().max().copied(),
                crate::triangle_count(&snap).triangles,
            )
        });
        // Writer keeps streaming while the reader thread works.
        for v in 0..24u32 {
            g.insert_batch(&[Edge::new(v, (v + 5) % 24)]);
        }
        let (cc_max, tc) = handle.join().unwrap();
        assert_eq!(cc_max, Some(0), "ring is one component labeled by min id");
        assert_eq!(tc, 0, "a plain ring has no triangles");
    }
}
