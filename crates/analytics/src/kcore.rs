//! k-core decomposition by parallel peeling.
//!
//! Not part of the paper's headline evaluation, but a standard member of the
//! Ligra-style kernel family the paper's interface targets (§5), and a
//! natural consumer of LSGraph's fast sorted-neighbor iteration. Returns the
//! *coreness* of every vertex: the largest `k` such that the vertex survives
//! in the subgraph where every vertex has degree ≥ `k`.

use std::sync::atomic::{AtomicU32, Ordering};

use lsgraph_api::Graph;
use rayon::prelude::*;

/// Computes the coreness of every vertex of a symmetric graph.
pub fn kcore<G: Graph + ?Sized>(g: &G) -> Vec<u32> {
    let _k = lsgraph_api::kernel_scope("kcore");
    let n = g.num_vertices();
    let deg: Vec<AtomicU32> = (0..n as u32)
        .map(|v| AtomicU32::new(g.degree(v) as u32))
        .collect();
    let core: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let alive: Vec<std::sync::atomic::AtomicBool> = (0..n)
        .map(|_| std::sync::atomic::AtomicBool::new(true))
        .collect();
    let mut remaining = n;
    let mut k = 0u32;
    while remaining > 0 {
        // Peel everything with degree <= k until the level is exhausted.
        loop {
            let peel: Vec<u32> = (0..n as u32)
                .into_par_iter()
                .filter(|&v| {
                    alive[v as usize].load(Ordering::Relaxed)
                        && deg[v as usize].load(Ordering::Relaxed) <= k
                })
                .collect();
            if peel.is_empty() {
                break;
            }
            peel.par_iter().for_each(|&v| {
                alive[v as usize].store(false, Ordering::Relaxed);
                core[v as usize].store(k, Ordering::Relaxed);
            });
            remaining -= peel.len();
            peel.par_iter().for_each(|&v| {
                g.for_each_neighbor(v, &mut |u| {
                    if alive[u as usize].load(Ordering::Relaxed) {
                        deg[u as usize].fetch_sub(1, Ordering::Relaxed);
                    }
                });
            });
        }
        k += 1;
    }
    core.into_iter().map(AtomicU32::into_inner).collect()
}

/// The degeneracy (maximum coreness) of the graph.
pub fn degeneracy<G: Graph + ?Sized>(g: &G) -> u32 {
    kcore(g).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::Edge;
    use lsgraph_gen::Csr;

    fn sym(pairs: &[(u32, u32)], n: usize) -> Csr {
        let mut es = Vec::new();
        for &(a, b) in pairs {
            es.push(Edge::new(a, b));
            es.push(Edge::new(b, a));
        }
        Csr::from_edges(n, &es)
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 plus pendant 2-3: triangle is 2-core, tail 1-core.
        let g = sym(&[(0, 1), (1, 2), (0, 2), (2, 3)], 4);
        let c = kcore(&g);
        assert_eq!(c, vec![2, 2, 2, 1]);
        assert_eq!(degeneracy(&g), 2);
    }

    #[test]
    fn clique_coreness() {
        let mut pairs = Vec::new();
        for a in 0..6u32 {
            for b in a + 1..6 {
                pairs.push((a, b));
            }
        }
        let g = sym(&pairs, 6);
        assert!(kcore(&g).iter().all(|&c| c == 5));
    }

    #[test]
    fn isolated_vertices_are_zero_core() {
        let g = sym(&[(0, 1)], 4);
        let c = kcore(&g);
        assert_eq!(c[2], 0);
        assert_eq!(c[3], 0);
        assert_eq!(c[0], 1);
    }

    #[test]
    fn path_is_one_core() {
        let pairs: Vec<(u32, u32)> = (0..9).map(|v| (v, v + 1)).collect();
        let g = sym(&pairs, 10);
        assert!(kcore(&g).iter().all(|&c| c == 1));
    }
}
