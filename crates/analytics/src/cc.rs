//! Connected components by parallel label propagation (paper Table 2).

use std::sync::atomic::{AtomicU32, Ordering};

use lsgraph_api::Graph;

use crate::edge_map::edge_map;
use crate::subset::VertexSubset;

/// Computes connected-component labels on a symmetric graph: every vertex
/// ends with the minimum vertex id of its component.
pub fn connected_components<G: Graph + ?Sized>(g: &G) -> Vec<u32> {
    let _k = lsgraph_api::kernel_scope("cc");
    let n = g.num_vertices();
    let label: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let mut frontier = VertexSubset::full(n);
    while !frontier.is_empty() {
        frontier = edge_map(
            g,
            &frontier,
            |s, d| {
                // Monotone min-write: propagate s's label to d if smaller.
                let ls = label[s as usize].load(Ordering::Relaxed);
                let mut ld = label[d as usize].load(Ordering::Relaxed);
                let mut won = false;
                while ls < ld {
                    match label[d as usize].compare_exchange_weak(
                        ld,
                        ls,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            won = true;
                            break;
                        }
                        Err(cur) => ld = cur,
                    }
                }
                won
            },
            |_| true,
        );
    }
    label.into_iter().map(AtomicU32::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::Edge;
    use lsgraph_gen::Csr;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn sym(pairs: &[(u32, u32)], n: usize) -> Csr {
        let mut es = Vec::new();
        for &(a, b) in pairs {
            es.push(Edge::new(a, b));
            es.push(Edge::new(b, a));
        }
        Csr::from_edges(n, &es)
    }

    #[test]
    fn two_components_and_isolate() {
        let g = sym(&[(0, 1), (1, 2), (4, 5)], 7);
        let cc = connected_components(&g);
        assert_eq!(cc[0], 0);
        assert_eq!(cc[1], 0);
        assert_eq!(cc[2], 0);
        assert_eq!(cc[3], 3, "isolated vertex is its own component");
        assert_eq!(cc[4], 4);
        assert_eq!(cc[5], 4);
        assert_eq!(cc[6], 6);
    }

    #[test]
    fn chain_converges_to_min() {
        let n = 2_000u32;
        let pairs: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let g = sym(&pairs, n as usize);
        let cc = connected_components(&g);
        assert!(cc.iter().all(|&l| l == 0));
    }

    #[test]
    fn random_graph_matches_union_find() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 500usize;
        let pairs: Vec<(u32, u32)> = (0..400)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        let g = sym(&pairs, n);
        let cc = connected_components(&g);
        // Union-find oracle.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for &(a, b) in &pairs {
            let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
            parent[ra.max(rb)] = ra.min(rb);
        }
        for v in 0..n {
            for u in 0..n {
                let same_oracle = find(&mut parent, v) == find(&mut parent, u);
                let same_ours = cc[v] == cc[u];
                assert_eq!(same_oracle, same_ours, "pair ({v},{u})");
            }
        }
    }
}
