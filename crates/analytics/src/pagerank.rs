//! Pull-based PageRank (paper Table 2).

use lsgraph_api::Graph;
use rayon::prelude::*;

/// Runs `iters` synchronous PageRank iterations with damping `d` on a
/// symmetric graph, returning the score vector (sums to ~1 when every vertex
/// has at least one edge).
///
/// Dangling vertices redistribute uniformly, the standard correction.
pub fn pagerank<G: Graph + ?Sized>(g: &G, iters: usize, d: f64) -> Vec<f64> {
    let _k = lsgraph_api::kernel_scope("pagerank");
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let base = (1.0 - d) / n as f64;
    let mut score = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    for _ in 0..iters {
        // Dangling mass is shared evenly.
        let dangling: f64 = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                if g.degree(v) == 0 {
                    score[v as usize]
                } else {
                    0.0
                }
            })
            .sum();
        contrib.par_iter_mut().enumerate().for_each(|(v, c)| {
            let deg = g.degree(v as u32);
            *c = if deg > 0 { score[v] / deg as f64 } else { 0.0 };
        });
        let contrib_ref = &contrib;
        let next: Vec<f64> = (0..n as u32)
            .into_par_iter()
            .map(|v| {
                let mut sum = 0.0;
                g.for_each_neighbor(v, &mut |u| sum += contrib_ref[u as usize]);
                base + d * (sum + dangling / n as f64)
            })
            .collect();
        score = next;
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::Edge;
    use lsgraph_gen::Csr;

    #[test]
    fn uniform_on_symmetric_ring() {
        let n = 8u32;
        let mut es = Vec::new();
        for v in 0..n {
            es.push(Edge::new(v, (v + 1) % n));
            es.push(Edge::new((v + 1) % n, v));
        }
        let g = Csr::from_edges(n as usize, &es);
        let pr = pagerank(&g, 30, 0.85);
        for &s in &pr {
            assert!((s - 1.0 / n as f64).abs() < 1e-9, "score {s}");
        }
    }

    #[test]
    fn hub_scores_highest() {
        // Star: center 0 connected to 1..=5 (symmetrized).
        let mut es = Vec::new();
        for v in 1..=5u32 {
            es.push(Edge::new(0, v));
            es.push(Edge::new(v, 0));
        }
        let g = Csr::from_edges(6, &es);
        let pr = pagerank(&g, 50, 0.85);
        for v in 1..=5 {
            assert!(pr[0] > pr[v], "center must dominate leaf {v}");
            assert!((pr[v] - pr[1]).abs() < 1e-12, "leaves symmetric");
        }
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass conserved, got {total}");
    }

    #[test]
    fn dangling_mass_conserved() {
        // Vertex 2 is isolated: its mass must be redistributed, not lost.
        let g = Csr::from_edges(3, &[Edge::new(0, 1), Edge::new(1, 0)]);
        let pr = pagerank(&g, 40, 0.85);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
        assert!(pr[2] > 0.0 && pr[2] < pr[0]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert!(pagerank(&g, 5, 0.85).is_empty());
    }
}
