//! The `EdgeMap` primitive with sparse/dense direction switching (Ligra,
//! Shun & Blelloch PPoPP'13; paper §5 "Interface").

use lsgraph_api::Graph;
use rayon::prelude::*;

use crate::subset::VertexSubset;

/// Sparse→dense switch threshold: go dense when the frontier's out-degree
/// sum exceeds `m / DENSE_DIVISOR` (Ligra's heuristic).
const DENSE_DIVISOR: usize = 20;

/// Applies `update(src, dst)` over every edge out of `frontier`, returning
/// the subset of destinations for which `update` returned `true`.
///
/// `cond(dst)` gates destinations (e.g. "not yet visited"); in dense mode a
/// destination stops scanning its in-neighbors as soon as `cond` turns
/// false, giving Ligra's pull-side early exit.
///
/// `update` may be called concurrently for the same destination from
/// different sources; callers make it idempotent/atomic (e.g. CAS) so that
/// exactly one call per destination returns `true` in sparse mode. Dense
/// mode calls it from one thread per destination.
pub fn edge_map<G, U, C>(g: &G, frontier: &VertexSubset, update: U, cond: C) -> VertexSubset
where
    G: Graph + ?Sized,
    U: Fn(u32, u32) -> bool + Sync,
    C: Fn(u32) -> bool + Sync,
{
    let n = g.num_vertices();
    let ids = frontier.to_sparse();
    let out_sum: usize = ids.par_iter().map(|&v| g.degree(v)).sum();
    if out_sum + ids.len() > (g.num_edges() + 1) / DENSE_DIVISOR {
        edge_map_dense(g, frontier, update, cond, n)
    } else {
        edge_map_sparse(g, &ids, update, cond)
    }
}

fn edge_map_sparse<G, U, C>(g: &G, frontier: &[u32], update: U, cond: C) -> VertexSubset
where
    G: Graph + ?Sized,
    U: Fn(u32, u32) -> bool + Sync,
    C: Fn(u32) -> bool + Sync,
{
    let next: Vec<u32> = frontier
        .par_iter()
        .fold(Vec::new, |mut acc, &v| {
            g.for_each_neighbor(v, &mut |u| {
                if cond(u) && update(v, u) {
                    acc.push(u);
                }
            });
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    VertexSubset::Sparse(next)
}

fn edge_map_dense<G, U, C>(
    g: &G,
    frontier: &VertexSubset,
    update: U,
    cond: C,
    n: usize,
) -> VertexSubset
where
    G: Graph + ?Sized,
    U: Fn(u32, u32) -> bool + Sync,
    C: Fn(u32) -> bool + Sync,
{
    let in_frontier = frontier.to_dense(n);
    let next: Vec<bool> = (0..n as u32)
        .into_par_iter()
        .map(|d| {
            if !cond(d) {
                return false;
            }
            let mut added = false;
            // Pull across in-neighbors (== out-neighbors on symmetric
            // graphs); stop once cond flips, as Ligra does.
            g.for_each_neighbor_while(d, &mut |s| {
                if in_frontier[s as usize] && update(s, d) {
                    added = true;
                }
                cond(d)
            });
            added
        })
        .collect();
    let count = next.par_iter().filter(|&&b| b).count();
    VertexSubset::Dense(next, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::Edge;
    use lsgraph_gen::Csr;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn ring(n: u32) -> Csr {
        let mut es = Vec::new();
        for v in 0..n {
            es.push(Edge::new(v, (v + 1) % n));
            es.push(Edge::new((v + 1) % n, v));
        }
        Csr::from_edges(n as usize, &es)
    }

    #[test]
    fn one_bfs_step_on_ring() {
        let g = ring(10);
        let visited: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(u32::MAX)).collect();
        visited[0].store(0, Ordering::Relaxed);
        let next = edge_map(
            &g,
            &VertexSubset::single(0),
            |s, d| {
                visited[d as usize]
                    .compare_exchange(u32::MAX, s, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            },
            |d| visited[d as usize].load(Ordering::Relaxed) == u32::MAX,
        );
        let mut ids = next.to_sparse();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 9]);
    }

    #[test]
    fn dense_mode_kicks_in_for_full_frontier() {
        let g = ring(50);
        // Full frontier forces the dense path (degree sum = 2n > m/20).
        let hits = AtomicU32::new(0);
        let next = edge_map(
            &g,
            &VertexSubset::full(50),
            |_s, _d| {
                hits.fetch_add(1, Ordering::Relaxed);
                true
            },
            |_| true,
        );
        assert_eq!(next.len(), 50);
        assert!(matches!(next, VertexSubset::Dense(..)));
    }

    #[test]
    fn empty_frontier_yields_empty() {
        let g = ring(5);
        let next = edge_map(&g, &VertexSubset::empty(), |_, _| true, |_| true);
        assert!(next.is_empty());
    }
}
