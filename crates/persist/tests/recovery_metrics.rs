//! Recovery observability: the `RecoveryReport` counters
//! (`recovery_frames_replayed`, `recovery_frames_discarded`,
//! `recovery_images_discarded`) are recorded into the engine's
//! `StructStats` at `Store::open`, and must therefore be visible through
//! the metrics registry — in Prometheus text exposition and in the JSONL
//! time-series stream — without any persist-specific plumbing.

use std::sync::{Arc, Mutex, MutexGuard};

use lsgraph_api::{metrics, Edge, MetricsRegistry, Sampler};
use lsgraph_core::Config;
use lsgraph_persist::{checkpoint, segment, Store, StoreOptions};

/// The JSONL sink is process-global; serialize tests that stream.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg() -> Config {
    Config {
        m: 128,
        ..Config::default()
    }
}

#[test]
fn recovery_counters_surface_in_prometheus_and_jsonl() {
    let _l = lock();
    let dir = std::env::temp_dir().join(format!("lsgraph-recmetrics-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let opts = StoreOptions {
        delta_ratio: 1.0,
        ..StoreOptions::default()
    };
    {
        let (mut store, _) = Store::open_with(&dir, 200, cfg(), opts).unwrap();
        for i in 0..8u32 {
            let batch: Vec<Edge> = (0..30).map(|j| Edge::new(i % 5, i * 40 + j)).collect();
            store.insert_batch(&batch).unwrap();
            store.sync().unwrap();
            if i == 3 || i == 5 {
                store.checkpoint().unwrap();
            }
        }
    }
    // Image 1 is the full base, image 2 the delta on it. Corrupt the delta
    // (→ recovery_images_discarded) and tear the WAL tail mid-frame
    // (→ recovery_frames_discarded); the surviving frames replay
    // (→ recovery_frames_replayed).
    let delta = checkpoint::delta_file(&dir, 2);
    let mut bytes = std::fs::read(&delta).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&delta, &bytes).unwrap();
    let seg0 = segment::segment_file(&dir, 0);
    let bytes = std::fs::read(&seg0).unwrap();
    std::fs::write(&seg0, &bytes[..bytes.len() - 5]).unwrap();

    let (store, report) = Store::open_with(&dir, 200, cfg(), opts).unwrap();
    assert!(report.frames_replayed > 0);
    assert_eq!(report.frames_discarded, 1);
    assert_eq!(report.images_discarded, 1);

    let mut registry = MetricsRegistry::new();
    registry.register_struct_stats("lsgraph", store.graph().stats_handle());
    let sample = Arc::new(registry);

    // Prometheus exposition carries all three, with the observed values.
    let text = sample.render_prometheus();
    for (name, want) in [
        (
            "lsgraph_recovery_frames_replayed_total",
            report.frames_replayed,
        ),
        ("lsgraph_recovery_frames_discarded_total", 1),
        ("lsgraph_recovery_images_discarded_total", 1),
    ] {
        assert!(
            text.contains(&format!("{name} {want}")),
            "missing `{name} {want}` in exposition:\n{text}"
        );
    }
    // And the WAL/checkpoint durability counters ride along.
    assert!(text.contains("lsgraph_wal_segments_rotated_total"));
    assert!(text.contains("lsgraph_delta_checkpoints_written_total"));
    assert!(text.contains("# TYPE lsgraph_wal_live_bytes gauge"));

    // One JSONL tick: the same names appear in the counters object.
    let path =
        std::env::temp_dir().join(format!("lsgraph_recmetrics_{}.jsonl", std::process::id()));
    metrics::stream_to_file(&path).unwrap();
    assert!(metrics::write_header("recovery", 1).unwrap());
    let mut sampler = Sampler::new(sample, "recovery/m=128");
    assert!(sampler.tick(&[]).unwrap());
    assert_eq!(metrics::finish_stream().unwrap(), Some(1));
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let line = text.lines().nth(1).expect("header + one sample");
    assert!(line.contains(&format!(
        "\"lsgraph_recovery_frames_replayed\":{}",
        report.frames_replayed
    )));
    assert!(line.contains("\"lsgraph_recovery_frames_discarded\":1"));
    assert!(line.contains("\"lsgraph_recovery_images_discarded\":1"));
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
