// repro: delta checkpoint with a vertex id beyond the parent image's count
use lsgraph_api::{DynamicGraph, Edge, Graph};
use lsgraph_core::{Config, LsGraph};
use lsgraph_persist::checkpoint::{
    checkpoint_file, load_newest_chain, write_checkpoint, write_delta_checkpoint,
};

#[test]
fn delta_with_grown_vertex_recovers() {
    let dir = std::env::temp_dir().join(format!("lsgraph-growth-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = Config {
        m: 256,
        ..Config::default()
    };
    let mut g = LsGraph::with_config(8, cfg);
    g.insert_batch(&[Edge::new(1, 2), Edge::new(2, 3)]);
    write_checkpoint(&dir, 1, &g, 0, 10, 1).unwrap();
    g.clear_dirty();
    // New vertex id beyond the parent freeze's vertex count.
    g.insert_batch(&[Edge::new(50, 1)]);
    let dirty = g.take_dirty_vertices();
    write_delta_checkpoint(&dir, 2, 1, &g, &dirty, 0, 20, 2).unwrap();
    let (restored, _info) = load_newest_chain(&dir, cfg).unwrap();
    let (r, meta) = restored.unwrap();
    assert_eq!(meta.id, 2);
    assert_eq!(r.neighbors(50), vec![1]);
    let _ = checkpoint_file(&dir, 1);
    std::fs::remove_dir_all(&dir).ok();
}
