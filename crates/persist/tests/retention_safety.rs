//! Retention-GC safety property suite (requires `--features failpoints`).
//!
//! **The property**: retention GC never deletes a WAL segment or image
//! file that the newest recoverable chain still needs. It is checked
//! differentially — after *every* retention pass (completed or killed
//! mid-GC between unlinks) the store is dropped and reopened from disk,
//! and the recovered graph must equal a `BTreeSet` shadow oracle of all
//! acknowledged batches, exactly. If GC ever reclaimed a needed byte, the
//! reopen would come up short and the oracle comparison would fail.
//!
//! The workload is fuzzed across four seeds with a tiny segment budget so
//! GC cutoffs land on rotation boundaries constantly, and every other
//! retention pass runs with `segment_gc` armed at a seed-dependent Nth
//! evaluation so kills land between individual unlinks (half-collected
//! directories).

#![cfg(feature = "failpoints")]

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, Once};

use lsgraph_api::failpoints::{self, FailMode};
use lsgraph_api::{DynamicGraph, Edge, Graph};
use lsgraph_core::Config;
use lsgraph_persist::{Store, StoreOptions};
use rand::{rngs::SmallRng, Rng, SeedableRng};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn quiet_failpoint_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg_is_failpoint = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("failpoint"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("failpoint"));
            if !msg_is_failpoint {
                prev(info);
            }
        }));
    });
}

const N: usize = 300;
const ROUNDS: usize = 28;

fn cfg() -> Config {
    Config {
        m: 128,
        ..Config::default()
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lsgraph-retsafe-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Tiny segments + eager deltas: rotation on nearly every batch, so GC
/// cutoffs exercise segment boundaries continuously.
fn opts() -> StoreOptions {
    StoreOptions {
        segment_bytes: 512,
        delta_ratio: 1.0,
        max_delta_chain: 4,
        ..StoreOptions::default()
    }
}

/// Asserts the on-disk state recovers to exactly the shadow oracle.
fn assert_recovers_to(dir: &std::path::Path, shadow: &[BTreeSet<u32>], ctx: &str) -> Store {
    let (store, report) = Store::open_with(dir, N, cfg(), opts()).unwrap();
    assert_eq!(
        report.frames_discarded, 0,
        "{ctx}: GC must never manufacture a torn tail"
    );
    assert_eq!(
        store.graph().num_edges(),
        shadow.iter().map(BTreeSet::len).sum::<usize>(),
        "{ctx}: num_edges"
    );
    for v in 0..N as u32 {
        let want: Vec<u32> = shadow[v as usize].iter().copied().collect();
        assert_eq!(store.graph().neighbors(v), want, "{ctx}: vertex {v}");
    }
    store.graph().validate_structure().unwrap();
    store
}

/// One fuzzed run: random insert/delete batches, checkpoint + retention
/// every few rounds, every other retention pass killed mid-GC, and a
/// drop + reopen + oracle check after each pass.
fn fuzz_retention(seed: u64) {
    quiet_failpoint_panics();
    failpoints::reset();
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15));
    let dir = tmpdir(&format!("seed-{seed}"));
    let mut shadow = vec![BTreeSet::new(); N];
    let mut store = Store::open_with(&dir, N, cfg(), opts()).unwrap().0;
    let mut kills = 0u64;
    let mut clean_passes = 0u64;

    for round in 0..ROUNDS {
        if round % 3 == 2 {
            let mut del = Vec::new();
            for _ in 0..20 {
                del.push(Edge::new(rng.gen_range(0..32), rng.gen_range(0..N as u32)));
            }
            store.delete_batch(&del).unwrap();
            for e in &del {
                shadow[e.src as usize].remove(&e.dst);
            }
        } else {
            let mut ins = Vec::new();
            for _ in 0..40 {
                ins.push(Edge::new(rng.gen_range(0..32), rng.gen_range(0..N as u32)));
            }
            store.insert_batch(&ins).unwrap();
            for e in &ins {
                shadow[e.src as usize].insert(e.dst);
            }
        }
        store.sync().unwrap();

        if round % 4 != 3 {
            continue;
        }
        store.checkpoint().unwrap();

        if round % 8 == 3 {
            // Kill this pass between unlinks, at a seed-dependent depth.
            let nth = 1 + (rng.gen_range(0..3) + seed) % 4;
            failpoints::configure("segment_gc", FailMode::Nth(nth));
            let killed = catch_unwind(AssertUnwindSafe(|| store.run_retention())).is_err();
            let fired = failpoints::fired("segment_gc") > 0;
            failpoints::configure("segment_gc", FailMode::Off);
            failpoints::reset();
            if killed {
                kills += 1;
                assert!(fired, "seed {seed} round {round}: kill without a fire");
            }
            // The "process" died mid-GC: drop everything and recover.
            drop(store);
            store = assert_recovers_to(&dir, &shadow, &format!("seed {seed} kill @ {round}"));
        } else {
            let report = store.run_retention().unwrap();
            clean_passes += 1;
            // Whatever the pass deleted, the survivors must still recover.
            drop(store);
            store = assert_recovers_to(&dir, &shadow, &format!("seed {seed} pass @ {round}"));
            if report.segments_deleted > 0 {
                // The cutoff honored the chain tip: nothing at or past the
                // tip's replay segment was reclaimed.
                assert!(
                    report.segment_cutoff <= store.wal_position().segment,
                    "seed {seed} round {round}: cutoff past the active segment"
                );
            }
        }
    }
    assert!(
        kills > 0,
        "seed {seed}: no mid-GC kill landed — fuzz is vacuous"
    );
    assert!(clean_passes > 0, "seed {seed}: no clean retention pass ran");

    // Final end-to-end: the surviving state still equals the full oracle.
    drop(store);
    let store = assert_recovers_to(&dir, &shadow, &format!("seed {seed} final"));
    drop(store);
    failpoints::reset();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retention_never_deletes_what_the_newest_chain_needs() {
    let _l = lock();
    for seed in 1..=4 {
        fuzz_retention(seed);
    }
}
