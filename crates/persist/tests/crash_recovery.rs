//! Crash-recovery differential suite (requires `--features failpoints`).
//!
//! For every durability failpoint site (`wal_append`, `wal_sync`,
//! `checkpoint_write`, `recovery_replay`, and — under rotation + delta
//! checkpoints + retention — `wal_rotate`, `delta_checkpoint`,
//! `segment_gc`), under four seeds each, the process is "killed"
//! mid-stream — the injected panic unwinds out of the store and the store
//! is dropped — and then recovered from disk. The recovered graph must be
//! **oracle-equal** to an uninterrupted replay of exactly the batch prefix
//! the recovery report claims (`RecoveryReport::next_seq`): same adjacency
//! per vertex against a `BTreeSet` shadow, same exact `num_edges` as a
//! fresh fault-free `LsGraph`, and `validate_structure` must hold. A
//! `wal_rotate` kill lands precisely in the seal-old/create-new window, so
//! those runs cover a crash straddling a segment boundary; a `segment_gc`
//! kill lands between individual GC unlinks (mid-GC).
//!
//! A separate torn-write test chops the WAL mid-frame and asserts the tail
//! is discarded with a nonzero `recovery_frames_discarded`; a corrupt
//! middle-of-chain delta test asserts recovery degrades to the surviving
//! chain prefix and the WAL tail replays the difference back; and the
//! quarantine fuzz interleaves apply-fault quarantines with WAL appends,
//! checkpoints, and repairs, asserting quarantined vertices never leak an
//! adjacency record into a checkpoint image.

#![cfg(feature = "failpoints")]

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, Once};

use lsgraph_api::failpoints::{self, FailMode};
use lsgraph_api::{DynamicGraph, Edge, Graph};
use lsgraph_core::{Config, LsGraph};
use lsgraph_persist::{checkpoint, segment, RecoveryReport, Store, StoreOptions, WalOp};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Failpoint configuration is process-global; every test serializes here.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Suppresses panic-hook stderr spew for intentional failpoint panics.
fn quiet_failpoint_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg_is_failpoint = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("failpoint"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("failpoint"));
            if !msg_is_failpoint {
                prev(info);
            }
        }));
    });
}

const N: usize = 500;
const BATCHES: usize = 30;

/// Small `m` so the stream crosses every tier before a checkpoint lands.
fn cfg() -> Config {
    Config {
        m: 128,
        ..Config::default()
    }
}

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lsgraph-crash-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// Full-image-only checkpoints: keeps the `checkpoint_write` evaluation
/// count of the legacy harness stable and the quarantine audit's
/// `load_checkpoint` applicable to every image.
fn full_opts() -> StoreOptions {
    StoreOptions {
        delta_ratio: 0.0,
        ..StoreOptions::default()
    }
}

/// Aggressive rotation + delta chaining + retention, so the three new
/// sites (`wal_rotate`, `delta_checkpoint`, `segment_gc`) are evaluated
/// many times per run.
fn rotating_opts() -> StoreOptions {
    StoreOptions {
        segment_bytes: 600,
        delta_ratio: 1.0,
        max_delta_chain: 8,
        ..StoreOptions::default()
    }
}

/// The deterministic update stream: every (site, seed) run sees the same
/// batches, so the oracle is a pure function of how far the run got.
/// Two hot sources push through array → RIA → HITree; every third batch
/// is a delete.
fn stream() -> Vec<(WalOp, Vec<Edge>)> {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut out = Vec::new();
    for i in 0..BATCHES {
        if i % 3 == 2 {
            let mut del = Vec::new();
            for _ in 0..25 {
                del.push(Edge::new(rng.gen_range(0..40), rng.gen_range(0..N as u32)));
            }
            out.push((WalOp::Delete, del));
            continue;
        }
        let mut ins = Vec::new();
        for src in 0..2u32 {
            let center = rng.gen_range(0..400u32);
            for j in 0..40 {
                ins.push(Edge::new(src, center + j));
            }
        }
        for _ in 0..80 {
            ins.push(Edge::new(rng.gen_range(0..40), rng.gen_range(0..N as u32)));
        }
        out.push((WalOp::Insert, ins));
    }
    out
}

/// Applies `batches` to a shadow oracle and returns per-vertex sorted
/// adjacency.
fn shadow_of(batches: &[(WalOp, Vec<Edge>)]) -> Vec<BTreeSet<u32>> {
    let mut shadow = vec![BTreeSet::new(); N];
    for (op, b) in batches {
        for e in b {
            match op {
                WalOp::Insert => {
                    shadow[e.src as usize].insert(e.dst);
                }
                WalOp::Delete => {
                    shadow[e.src as usize].remove(&e.dst);
                }
            }
        }
    }
    shadow
}

/// The recovered graph must equal both the shadow oracle and a fresh
/// fault-free engine replaying the same prefix.
fn assert_oracle_equal(g: &LsGraph, prefix: &[(WalOp, Vec<Edge>)], ctx: &str) {
    let shadow = shadow_of(prefix);
    let mut fresh = LsGraph::with_config(N, cfg());
    for (op, b) in prefix {
        match op {
            WalOp::Insert => fresh.insert_batch(b),
            WalOp::Delete => fresh.delete_batch(b),
        };
    }
    assert_eq!(
        g.num_edges(),
        shadow.iter().map(BTreeSet::len).sum::<usize>(),
        "{ctx}: num_edges"
    );
    assert_eq!(g.num_edges(), fresh.num_edges(), "{ctx}: vs fresh engine");
    for v in 0..N as u32 {
        let want: Vec<u32> = shadow[v as usize].iter().copied().collect();
        assert_eq!(g.neighbors(v), want, "{ctx}: vertex {v}");
        assert_eq!(fresh.neighbors(v), want, "{ctx}: fresh vertex {v}");
    }
    g.validate_structure()
        .unwrap_or_else(|e| panic!("{ctx}: {e}"));
}

/// Sync after every odd batch, checkpoint after batches 5, 11, 17, 23 —
/// so `wal_sync` sees ~19 evaluations, `checkpoint_write` exactly 4, and
/// the post-checkpoint tail leaves ≥ 6 frames for `recovery_replay`.
fn maintenance(store: &mut Store, i: usize) {
    if i % 6 == 5 && i < 24 {
        store.checkpoint().unwrap();
    } else if i % 2 == 1 {
        store.sync().unwrap();
    }
}

/// Checkpoint + retention every fourth batch: under [`rotating_opts`] the
/// first image is full and every later one a delta, each retention pass
/// deletes several sealed segments, and the 600-byte budget rotates on
/// nearly every append — plenty of evaluations for every new site.
fn rotating_maintenance(store: &mut Store, i: usize) {
    if i % 4 == 3 {
        store.checkpoint().unwrap();
        store.run_retention().unwrap();
    } else if i % 2 == 1 {
        store.sync().unwrap();
    }
}

/// Nth-evaluation crash points per site: deterministic on any machine, and
/// spread across the stream (and across checkpoint/segment/GC boundaries)
/// by seed.
fn nth_for(site: &str, seed: u64) -> u64 {
    match site {
        "wal_append" => seed * 5,
        "wal_sync" | "wal_rotate" => seed * 3,
        "segment_gc" => seed * 2,
        _ => seed,
    }
}

/// Runs the stream with `site` armed, crashing wherever `Nth` fires; drops
/// the store (the "kill"); optionally crashes again during the first
/// recovery; then recovers cleanly and checks the oracle.
fn crash_harness(site: &str, seed: u64, opts: StoreOptions, maint: fn(&mut Store, usize)) {
    quiet_failpoint_panics();
    failpoints::reset();
    let dir = tmpdir(&format!("{site}-{seed}"));
    let batches = stream();

    let (mut store, _) = Store::open_with(&dir, N, cfg(), opts).unwrap();
    failpoints::configure(site, FailMode::Nth(nth_for(site, seed)));
    let mut crashed_at = None;
    for (i, (op, b)) in batches.iter().enumerate() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            match op {
                WalOp::Insert => store.insert_batch(b).unwrap(),
                WalOp::Delete => store.delete_batch(b).unwrap(),
            };
            maint(&mut store, i);
        }));
        if r.is_err() {
            crashed_at = Some(i);
            break;
        }
    }
    drop(store);

    // First recovery still has the site armed: for `recovery_replay` this
    // is where the crash lands; for the other sites the fault already
    // fired (Nth is one-shot) and recovery runs clean.
    let first = catch_unwind(AssertUnwindSafe(|| Store::open_with(&dir, N, cfg(), opts)));
    if site == "recovery_replay" {
        assert!(
            crashed_at.is_none() && first.is_err(),
            "{site}/{seed}: the crash must land inside recovery"
        );
    } else {
        assert!(
            crashed_at.is_some_and(|i| i < batches.len()),
            "{site}/{seed}: the crash must land mid-stream"
        );
    }
    assert_eq!(failpoints::fired(site), 1, "{site}/{seed}: Nth fires once");
    failpoints::configure(site, FailMode::Off);

    // Clean recovery: whatever prefix survived must replay exactly.
    let (store, report) = Store::open_with(&dir, N, cfg(), opts).unwrap();
    let k = report.next_seq as usize;
    assert!(k <= batches.len(), "{site}/{seed}: seq beyond the stream");
    if let Some(i) = crashed_at {
        assert!(k <= i + 1, "{site}/{seed}: recovered past the crash point");
    }
    assert_eq!(
        report.frames_discarded, 0,
        "{site}/{seed}: a failpoint kill never tears a synced frame"
    );
    assert_eq!(store.graph().num_edges() as u64, report.edges_restored);
    assert_oracle_equal(store.graph(), &batches[..k], &format!("{site}/{seed}"));
    failpoints::reset();
    std::fs::remove_dir_all(&dir).ok();
}

fn run_site_under_seeds(site: &str) {
    let _l = lock();
    for seed in 1..=4 {
        crash_harness(site, seed, full_opts(), maintenance);
    }
}

fn run_rotating_site_under_seeds(site: &str) {
    let _l = lock();
    for seed in 1..=4 {
        crash_harness(site, seed, rotating_opts(), rotating_maintenance);
    }
}

#[test]
fn crashes_at_wal_append_recover_to_a_durable_prefix() {
    run_site_under_seeds("wal_append");
}

#[test]
fn crashes_at_wal_sync_recover_to_a_durable_prefix() {
    run_site_under_seeds("wal_sync");
}

#[test]
fn crashes_at_checkpoint_write_recover_to_a_durable_prefix() {
    run_site_under_seeds("checkpoint_write");
}

#[test]
fn crashes_during_recovery_replay_recover_on_retry() {
    run_site_under_seeds("recovery_replay");
}

/// A `wal_rotate` kill lands in the seal-old/create-new window: the crash
/// straddles a segment boundary and recovery must stitch the stream back
/// together across it.
#[test]
fn crashes_at_wal_rotate_straddle_the_segment_boundary() {
    run_rotating_site_under_seeds("wal_rotate");
}

#[test]
fn crashes_at_delta_checkpoint_recover_to_a_durable_prefix() {
    run_rotating_site_under_seeds("delta_checkpoint");
}

/// A `segment_gc` kill lands between individual unlinks of a retention
/// pass; the half-collected directory must still recover.
#[test]
fn crashes_at_segment_gc_mid_pass_recover_to_a_durable_prefix() {
    run_rotating_site_under_seeds("segment_gc");
}

/// A corrupt delta in the middle of the chain degrades recovery to the
/// surviving prefix — and because the WAL was never truncated past the
/// degraded tip, replay restores the *entire* stream anyway.
#[test]
fn corrupt_mid_chain_delta_degrades_and_wal_replay_restores() {
    let _l = lock();
    quiet_failpoint_panics();
    failpoints::reset();
    let dir = tmpdir("corrupt-delta");
    let batches = stream();
    let opts = StoreOptions {
        delta_ratio: 1.0,
        ..StoreOptions::default()
    };
    {
        // Checkpoint every fourth batch but never run retention: the WAL
        // keeps the full history, so a degraded chain can always catch up.
        let (mut store, _) = Store::open_with(&dir, N, cfg(), opts).unwrap();
        for (i, (op, b)) in batches.iter().enumerate() {
            match op {
                WalOp::Insert => store.insert_batch(b).unwrap(),
                WalOp::Delete => store.delete_batch(b).unwrap(),
            };
            if i % 4 == 3 {
                store.checkpoint().unwrap();
            }
        }
        store.sync().unwrap();
    }
    // Image 1 is the full base; 2..=7 are deltas. Corrupt a middle one.
    let victim = checkpoint::delta_file(&dir, 4);
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();

    let (store, report) = Store::open_with(&dir, N, cfg(), opts).unwrap();
    assert!(
        report.images_discarded >= 1,
        "the corrupt delta (and its orphans) must be counted"
    );
    assert!(
        report.chain_len < 6,
        "the chain must have been cut short of the corruption"
    );
    assert!(report.frames_replayed > 0, "the WAL tail fills the gap");
    assert_eq!(report.frames_discarded, 0);
    assert!(store.graph().stats().snapshot().recovery_images_discarded >= 1);
    assert_oracle_equal(store.graph(), &batches, "corrupt-delta");
    drop(store);
    // Open pruned the unusable images, so a second recovery is clean.
    let (store, report) = Store::open_with(&dir, N, cfg(), opts).unwrap();
    assert_eq!(report.images_discarded, 0, "pruned at the first reopen");
    assert_oracle_equal(store.graph(), &batches, "corrupt-delta-reopen");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_trailing_frames_are_discarded_and_counted() {
    let _l = lock();
    quiet_failpoint_panics();
    failpoints::reset();
    let dir = tmpdir("torn");
    let batches = stream();
    {
        let (mut store, _) = Store::open_with(&dir, N, cfg(), full_opts()).unwrap();
        for (i, (op, b)) in batches.iter().enumerate() {
            match op {
                WalOp::Insert => store.insert_batch(b).unwrap(),
                WalOp::Delete => store.delete_batch(b).unwrap(),
            };
            maintenance(&mut store, i);
        }
        store.sync().unwrap();
    }
    // Tear the log mid-frame, as a real torn write would.
    let wal_path = segment::segment_file(&dir, 0);
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 7]).unwrap();

    let (store, report) = Store::open_with(&dir, N, cfg(), full_opts()).unwrap();
    assert_eq!(report.frames_discarded, 1, "one truncation event");
    assert!(report.bytes_discarded > 0);
    assert!(
        store.graph().stats().snapshot().recovery_frames_discarded > 0,
        "the counter must expose the tear"
    );
    let k = report.next_seq as usize;
    assert_eq!(k, batches.len() - 1, "exactly the last frame was torn");
    assert_oracle_equal(store.graph(), &batches[..k], "torn");
    // The tail is physically gone: a second recovery is clean and equal.
    drop(store);
    let (store, report) = Store::open_with(&dir, N, cfg(), full_opts()).unwrap();
    assert_eq!(report.frames_discarded, 0);
    assert_oracle_equal(store.graph(), &batches[..k], "torn-reopen");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: fuzz the quarantine ↔ durability interleaving. Apply faults
/// (`apply_run`) quarantine vertices *after* their batch was WAL-logged; a
/// checkpoint taken while the quarantine is live must carry the vertex in
/// its quarantine list and **no adjacency record for it**, and a repair
/// followed by a checkpoint must make the repaired state durable.
#[test]
fn quarantined_vertices_never_leak_into_checkpoints() {
    let _l = lock();
    quiet_failpoint_panics();
    for seed in 1..=4u64 {
        failpoints::reset();
        let dir = tmpdir(&format!("quarantine-{seed}"));
        let batches = stream();
        let (mut store, _) = Store::open_with(&dir, N, cfg(), full_opts()).unwrap();
        let mut shadow = vec![BTreeSet::new(); N];
        let mut total_quarantined = 0u64;
        for (i, (op, b)) in batches.iter().enumerate() {
            failpoints::configure(
                "apply_run",
                FailMode::Probability {
                    p: 0.02,
                    seed: seed.wrapping_mul(1000).wrapping_add(i as u64),
                },
            );
            let outcome = match op {
                WalOp::Insert => store.insert_batch(b).unwrap(),
                WalOp::Delete => store.delete_batch(b).unwrap(),
            };
            failpoints::configure("apply_run", FailMode::Off);
            for e in b {
                match op {
                    WalOp::Insert => {
                        shadow[e.src as usize].insert(e.dst);
                    }
                    WalOp::Delete => {
                        shadow[e.src as usize].remove(&e.dst);
                    }
                }
            }
            if outcome.quarantined.is_empty() {
                continue;
            }
            total_quarantined += outcome.quarantined.len() as u64;
            // Checkpoint with the quarantine live, then audit the image.
            let meta = store.checkpoint().unwrap();
            let img = checkpoint::checkpoint_file(store.dir(), meta.id);
            let (reloaded, _) = checkpoint::load_checkpoint(&img, cfg()).unwrap();
            for &q in &outcome.quarantined {
                assert!(
                    reloaded.is_quarantined(q),
                    "seed {seed} batch {i}: vertex {q} lost its quarantine mark"
                );
                assert_eq!(
                    reloaded.degree(q),
                    0,
                    "seed {seed} batch {i}: quarantined vertex {q} leaked a record"
                );
            }
            assert_eq!(reloaded.num_edges(), store.graph().num_edges());
            // Repair from the oracle; the next checkpoint freezes it.
            for &q in &outcome.quarantined {
                let ns: Vec<u32> = shadow[q as usize].iter().copied().collect();
                store.graph_mut().repair_vertex(q, &ns).unwrap();
            }
            store.checkpoint().unwrap();
        }
        assert!(
            total_quarantined > 0,
            "seed {seed}: workload never quarantined — fuzz is vacuous"
        );
        // Final freeze, then recover: the repaired state is fully durable
        // and equals the fault-free oracle.
        store.checkpoint().unwrap();
        drop(store);
        let (store, report) = Store::open_with(&dir, N, cfg(), full_opts()).unwrap();
        assert_eq!(report.frames_replayed, 0, "checkpoint covers everything");
        assert!(store.graph().quarantined_vertices().is_empty());
        assert_oracle_equal(store.graph(), &batches, &format!("quarantine/{seed}"));
        failpoints::reset();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A recovery that replays frames whose application quarantines a vertex
/// (apply fault during replay) still satisfies containment: the surviving
/// vertices are oracle-equal and the store keeps functioning.
#[test]
fn apply_faults_during_replay_are_contained() {
    let _l = lock();
    quiet_failpoint_panics();
    failpoints::reset();
    let dir = tmpdir("replay-apply-fault");
    let batches = stream();
    {
        let (mut store, _) = Store::open(&dir, N, cfg()).unwrap();
        for (op, b) in &batches {
            match op {
                WalOp::Insert => store.insert_batch(b).unwrap(),
                WalOp::Delete => store.delete_batch(b).unwrap(),
            };
        }
        store.sync().unwrap();
    }
    failpoints::configure("apply_run", FailMode::Nth(40));
    let (store, report) = Store::open(&dir, N, cfg()).unwrap();
    failpoints::configure("apply_run", FailMode::Off);
    assert_eq!(report.frames_replayed, batches.len() as u64);
    let q: BTreeSet<u32> = store.graph().quarantined_vertices().into_iter().collect();
    assert!(!q.is_empty(), "the 40th run fault must have fired");
    let shadow = shadow_of(&batches);
    for v in 0..N as u32 {
        if q.contains(&v) {
            assert_eq!(store.graph().degree(v), 0);
        } else {
            let want: Vec<u32> = shadow[v as usize].iter().copied().collect();
            assert_eq!(store.graph().neighbors(v), want, "vertex {v}");
        }
    }
    store.graph().validate_structure().unwrap();
    failpoints::reset();
    std::fs::remove_dir_all(&dir).ok();
}

/// Recovery on a pristine directory is a no-op report.
#[test]
fn cold_start_reports_nothing() {
    let _l = lock();
    let dir = tmpdir("cold");
    let (store, report) = Store::open(&dir, N, cfg()).unwrap();
    assert_eq!(report, RecoveryReport::default());
    assert_eq!(store.graph().num_edges(), 0);
    std::fs::remove_dir_all(&dir).ok();
}
