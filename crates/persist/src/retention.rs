//! Retention GC and chain compaction: bounding durability storage without
//! ever touching a byte the newest recoverable chain still needs.
//!
//! **The retention rule**: an image or WAL segment may be deleted only if
//! it is strictly older than the newest *recoverable* chain — where
//! "recoverable" is not inferred from file names but **proved** by
//! actually loading the chain ([`checkpoint::load_newest_chain`]) right
//! before deleting anything. Concretely, once a chain rooted at full image
//! `B` with tip `T` verifies:
//!
//! - image files (full or delta) with `id < B` are superseded — delete;
//! - WAL segments with index below `T`'s recorded replay segment can
//!   never be read again — delete (the active segment is always kept).
//!
//! Everything at or above the base stays, including orphaned deltas past a
//! broken link (they are unreachable but deleting them buys nothing and
//! keeping the rule strict keeps it provable).
//!
//! **Compaction** folds a verified delta chain into a single full image at
//! the tip's id, so recovery stops re-walking the chain and retention can
//! subsequently reclaim the folded deltas' predecessors. A crash mid-
//! compaction leaves both `checkpoint-T.img` and `checkpoint-T.dlt`; the
//! chain loader resolves that window by always preferring the full image
//! at a given id.

use std::fs;
use std::io;
use std::path::Path;

use lsgraph_api::fail_point;
use lsgraph_core::Config;

use crate::checkpoint::{self, CheckpointMeta};

/// What one retention pass deleted and where the cutoffs were.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Image files (full + delta) deleted.
    pub images_deleted: u64,
    /// Bytes of image files deleted.
    pub image_bytes_deleted: u64,
    /// WAL segments deleted.
    pub segments_deleted: u64,
    /// Bytes of WAL segments deleted.
    pub segment_bytes_deleted: u64,
    /// Base full image of the verified chain everything was measured
    /// against (0 when no chain verified and nothing was deleted).
    pub chain_base_id: u64,
    /// WAL segment index below which segments were reclaimable.
    pub segment_cutoff: u64,
}

/// The deletion cutoffs derived from one verified chain.
#[derive(Clone, Copy, Debug)]
pub struct RetentionCut {
    /// Newest recoverable chain's base full image.
    pub base_id: u64,
    /// The chain tip's meta; replay resumes at its WAL position, so
    /// segments below `tip.wal_segment` are dead.
    pub tip: CheckpointMeta,
}

/// Verifies the newest recoverable chain by fully loading it, then deletes
/// every image file strictly older than its base. The `segment_gc`
/// failpoint is evaluated before each unlink, so crash tests can kill
/// mid-GC and assert the survivors still recover. Returns the cutoffs for
/// the caller to also reclaim WAL segments (the segmented WAL owns its own
/// bookkeeping), or `None` when no chain verifies — in which case nothing
/// at all is deleted: with no recoverable image the WAL is the only copy
/// of history.
///
/// # Errors
///
/// Propagates I/O errors from the chain load, directory scan, or unlinks.
pub fn collect_image_garbage(
    dir: &Path,
    cfg: Config,
    report: &mut GcReport,
) -> io::Result<Option<RetentionCut>> {
    let (restored, info) = checkpoint::load_newest_chain(dir, cfg)?;
    let Some((_, tip)) = restored else {
        return Ok(None);
    };
    let cut = RetentionCut {
        base_id: info.base_id,
        tip,
    };
    report.chain_base_id = info.base_id;
    report.segment_cutoff = tip.wal_segment;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let id = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".img").or_else(|| s.strip_suffix(".dlt")))
            .and_then(|s| s.parse::<u64>().ok());
        let Some(id) = id else { continue };
        if id >= info.base_id {
            continue;
        }
        fail_point!("segment_gc");
        let len = fs::metadata(&path)?.len();
        fs::remove_file(&path)?;
        report.images_deleted += 1;
        report.image_bytes_deleted += len;
    }
    Ok(Some(cut))
}

/// Folds the newest recoverable delta chain into a full image at the
/// tip's id, then deletes that tip's delta file. A no-op (`Ok(None)`)
/// when there is no chain or the chain is already a bare full image.
///
/// Crash-safe by construction: the full image lands via temp-file +
/// rename *before* the delta is unlinked, and the loader prefers a full
/// over a delta at the same id, so every intermediate state recovers to
/// the same graph.
///
/// # Errors
///
/// Propagates I/O errors from the chain load or the image write.
pub fn compact_chain(dir: &Path, cfg: Config) -> io::Result<Option<CheckpointMeta>> {
    let (restored, info) = checkpoint::load_newest_chain(dir, cfg)?;
    let Some((g, tip)) = restored else {
        return Ok(None);
    };
    if info.chain_len == 0 {
        return Ok(None);
    }
    let meta = checkpoint::write_checkpoint(
        dir,
        tip.id,
        &g,
        tip.wal_segment,
        tip.wal_offset,
        tip.next_seq,
    )?;
    fs::remove_file(checkpoint::delta_file(dir, tip.id))?;
    Ok(Some(meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{
        checkpoint_file, delta_file, load_newest_chain, write_checkpoint, write_delta_checkpoint,
    };
    use lsgraph_api::{DynamicGraph, Edge, Graph};
    use lsgraph_core::LsGraph;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsgraph-ret-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn cfg() -> Config {
        Config {
            m: 256,
            ..Config::default()
        }
    }

    /// dir layout: fulls 1 and 3, deltas 2 (on 1) and 4 (on 3).
    fn two_chains(dir: &Path) -> LsGraph {
        let mut g = LsGraph::with_config(64, cfg());
        g.insert_batch(
            &(0..40u32)
                .map(|i| Edge::new(i % 8, i + 1))
                .collect::<Vec<_>>(),
        );
        write_checkpoint(dir, 1, &g, 0, 100, 1).unwrap();
        g.clear_dirty();
        g.insert_batch(&[Edge::new(9, 1), Edge::new(9, 4)]);
        let d = g.take_dirty_vertices();
        write_delta_checkpoint(dir, 2, 1, &g, &d, 0, 200, 2).unwrap();
        write_checkpoint(dir, 3, &g, 1, 50, 3).unwrap();
        g.clear_dirty();
        g.insert_batch(&[Edge::new(10, 2), Edge::new(10, 6)]);
        let d = g.take_dirty_vertices();
        write_delta_checkpoint(dir, 4, 3, &g, &d, 2, 75, 4).unwrap();
        g
    }

    #[test]
    fn gc_deletes_exactly_the_superseded_images() {
        let dir = tmpdir("gc-images");
        let g = two_chains(&dir);
        let mut report = GcReport::default();
        let cut = collect_image_garbage(&dir, cfg(), &mut report)
            .unwrap()
            .unwrap();
        assert_eq!(cut.base_id, 3);
        assert_eq!(cut.tip.id, 4);
        assert_eq!(cut.tip.wal_segment, 2);
        assert_eq!(report.images_deleted, 2, "full 1 and delta 2");
        assert!(report.image_bytes_deleted > 0);
        assert!(!checkpoint_file(&dir, 1).exists());
        assert!(!delta_file(&dir, 2).exists());
        assert!(checkpoint_file(&dir, 3).exists());
        assert!(delta_file(&dir, 4).exists());
        // The surviving chain still recovers to the same graph.
        let (restored, info) = load_newest_chain(&dir, cfg()).unwrap();
        let (r, _) = restored.unwrap();
        assert_eq!(info.base_id, 3);
        assert_eq!(r.num_edges(), g.num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_with_no_recoverable_chain_deletes_nothing() {
        let dir = tmpdir("gc-nochain");
        let mut g = LsGraph::with_config(16, cfg());
        g.insert_batch(&[Edge::new(1, 2)]);
        let d = g.take_dirty_vertices();
        // An orphan delta with no base at all.
        write_delta_checkpoint(&dir, 7, 6, &g, &d, 0, 10, 1).unwrap();
        let mut report = GcReport::default();
        assert!(collect_image_garbage(&dir, cfg(), &mut report)
            .unwrap()
            .is_none());
        assert_eq!(report.images_deleted, 0);
        assert!(
            delta_file(&dir, 7).exists(),
            "nothing verified, nothing deleted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_folds_the_chain_and_survives_its_crash_window() {
        let dir = tmpdir("compact");
        let g = two_chains(&dir);
        let meta = compact_chain(&dir, cfg()).unwrap().unwrap();
        assert_eq!(meta.id, 4, "full lands at the tip id");
        assert_eq!(meta.wal_segment, 2);
        assert_eq!(meta.wal_offset, 75);
        assert!(checkpoint_file(&dir, 4).exists());
        assert!(!delta_file(&dir, 4).exists(), "folded delta removed");
        let (restored, info) = load_newest_chain(&dir, cfg()).unwrap();
        let (r, _) = restored.unwrap();
        assert_eq!(info.base_id, 4);
        assert_eq!(info.chain_len, 0);
        assert_eq!(r.num_edges(), g.num_edges());
        // Idempotent: a bare full image has nothing to fold.
        assert!(compact_chain(&dir, cfg()).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
