//! Durability tier for LSGraph: write-ahead logging, tier-aware
//! checkpoints, and crash recovery with torn-write handling.
//!
//! The engine itself ([`lsgraph_core::LsGraph`]) is a purely in-memory
//! structure; this crate wraps it in a [`Store`] that makes streamed
//! updates survive a crash:
//!
//! - [`wal`] — every batch is appended as a length-prefixed, CRC32-checked
//!   frame *before* it is applied (write-ahead rule), with group-commit
//!   buffering and explicit [`Store::sync`] durability points.
//! - [`checkpoint`] — a full serialization of the hierarchical
//!   representation, walking each vertex's tier natively (inline line,
//!   sorted array, RIA via its redundant index, HITree via its iterator)
//!   into a versioned, self-validating binary image plus a manifest that
//!   records the WAL offset the image covers.
//! - [`store`] — recovery: newest valid checkpoint + WAL-tail replay
//!   through the normal batch pipeline, truncating the log at the first
//!   torn or corrupt frame and reporting what was reconstructed and what
//!   was discarded in a [`RecoveryReport`]. Checkpoints are also takeable
//!   *without pausing the writer*: [`Store::begin_checkpoint`] freezes a
//!   [`lsgraph_core::GraphSnapshot`] and returns a [`PendingCheckpoint`]
//!   whose image write can run on another thread while batches keep
//!   landing.
//!
//! Durability work is observable through four
//! [`StructStats`](lsgraph_api::StructStats) counters
//! (`wal_frames_appended`, `checkpoint_bytes`, `recovery_frames_replayed`,
//! `recovery_frames_discarded`) and injectable at four failpoint sites
//! (`wal_append`, `wal_sync`, `checkpoint_write`, `recovery_replay`).

pub mod checkpoint;
pub mod store;
pub mod wal;

pub use checkpoint::{CheckpointMeta, CheckpointView};
pub use store::{PendingCheckpoint, RecoveryReport, Store, StoreError, WAL_FILE};
pub use wal::{Wal, WalOp};
