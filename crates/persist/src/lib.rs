//! Durability tier for LSGraph: segmented write-ahead logging, tier-aware
//! full/delta checkpoints, retention GC, and crash recovery with
//! torn-write handling.
//!
//! The engine itself ([`lsgraph_core::LsGraph`]) is a purely in-memory
//! structure; this crate wraps it in a [`Store`] that makes streamed
//! updates survive a crash — and keeps the on-disk footprint bounded
//! while doing so:
//!
//! - [`wal`] — every batch is appended as a length-prefixed, CRC32-checked
//!   frame *before* it is applied (write-ahead rule), with group-commit
//!   buffering and explicit [`Store::sync`] durability points.
//! - [`segment`] — the WAL split into fixed-budget rotating files
//!   (`wal.000000`, `wal.000001`, …) with crash-safe rotation, positions
//!   as `(segment, offset)` pairs, and whole-segment deletion for GC.
//! - [`checkpoint`] — full images (the hierarchical representation walked
//!   tier-natively into a versioned, self-validating binary) plus
//!   dirty-vertex **delta** images that name their parent and only apply
//!   on exactly that state, forming validated recovery chains.
//! - [`retention`] — the GC rule (delete only what is strictly older than
//!   the newest chain *proved* recoverable by loading it) and chain
//!   compaction (fold deltas into a full image at the tip id).
//! - [`store`] — recovery: newest recoverable chain + WAL-tail replay
//!   through the normal batch pipeline, truncating the log at the first
//!   torn or corrupt frame, degrading gracefully past corrupt deltas, and
//!   reporting it all in a [`RecoveryReport`]. Checkpoints are also
//!   takeable *without pausing the writer*: [`Store::begin_checkpoint`]
//!   freezes a [`lsgraph_core::GraphSnapshot`] and returns a
//!   [`PendingCheckpoint`] whose image write can run on another thread
//!   while batches keep landing.
//!
//! Durability work is observable through the
//! [`StructStats`](lsgraph_api::StructStats) counters
//! (`wal_frames_appended`, `wal_segments_rotated`, `wal_segments_deleted`,
//! `checkpoint_bytes`, `delta_checkpoints_written`,
//! `recovery_frames_replayed`, `recovery_frames_discarded`,
//! `recovery_images_discarded`) and gauges (`wal_live_bytes`,
//! `checkpoint_dirty_vertices`), and injectable at seven failpoint sites
//! (`wal_append`, `wal_sync`, `wal_rotate`, `checkpoint_write`,
//! `delta_checkpoint`, `segment_gc`, `recovery_replay`).

pub mod checkpoint;
pub mod retention;
pub mod segment;
pub mod store;
pub mod wal;

pub use checkpoint::{ChainInfo, CheckpointMeta, CheckpointView};
pub use retention::GcReport;
pub use segment::{SegmentedWal, WalPosition};
pub use store::{PendingCheckpoint, RecoveryReport, Store, StoreError, StoreOptions, WAL_FILE};
pub use wal::{Wal, WalOp};
