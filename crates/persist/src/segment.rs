//! Segmented write-ahead logging: the WAL split into fixed-size rotating
//! files so retention GC can reclaim space in whole-segment units.
//!
//! A [`SegmentedWal`] is a sequence of files `wal.000000`, `wal.000001`, …
//! each an ordinary frame log in the [`crate::wal`] format. Exactly one
//! segment — the highest-numbered — is *active* and accepts appends; the
//! rest are sealed. When an append would push the active segment past its
//! byte budget, the WAL *rotates*: the active segment is flushed and
//! fsynced, then the next index is opened fresh. Frames are never split
//! across segments — a frame larger than the budget simply gets a segment
//! to itself.
//!
//! Positions in a segmented log are a ([`WalPosition`]) pair
//! `(segment, offset)` rather than a single byte offset; checkpoint images
//! record the pair so recovery knows exactly which segment to resume
//! replay in, even after older segments have been deleted by GC.
//!
//! Crash safety of rotation: the old segment is fsynced *before* the new
//! file is created, so a crash between the two leaves a fully valid sealed
//! segment and no successor — recovery reopens the sealed segment as
//! active and the next append re-triggers the rotation.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lsgraph_api::{fail_point, Edge, StructStats};

use crate::wal::{self, Wal, WalFrame, WalOp};

/// A replay position in a segmented WAL: byte `offset` inside segment
/// `segment`. Ordered lexicographically, which matches append order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct WalPosition {
    /// Index of the segment file (`wal.{segment:06}`).
    pub segment: u64,
    /// Byte offset inside that segment.
    pub offset: u64,
}

/// File name of WAL segment `index` under `dir` (zero-padded so lexical
/// order equals numeric order).
pub fn segment_file(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal.{index:06}"))
}

/// Extracts the index from a `wal.NNNNNN` file name; `None` for anything
/// else (including the legacy single-file `wal.log`).
pub fn segment_index_from_path(path: &Path) -> Option<u64> {
    let digits = path.file_name()?.to_str()?.strip_prefix("wal.")?;
    if digits.len() != 6 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Indices of the segment files currently present under `dir`, ascending.
pub fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut out: Vec<u64> = fs::read_dir(dir)?
        .filter_map(|e| segment_index_from_path(&e.ok()?.path()))
        .collect();
    out.sort_unstable();
    Ok(out)
}

/// Result of a cross-segment recovery scan.
#[derive(Debug, Default)]
pub struct SegmentedScan {
    /// Frames that decoded cleanly with contiguous sequence numbers,
    /// across every scanned segment in order.
    pub frames: Vec<WalFrame>,
    /// Position just past the last valid frame — where appending resumes.
    pub end: WalPosition,
    /// Truncation events (1 if a torn/corrupt tail was found anywhere).
    pub frames_discarded: u64,
    /// Bytes past the truncation point, including any later segments that
    /// become unreachable once the scan stops.
    pub bytes_discarded: u64,
}

/// Scans the segmented log under `dir` from `start`, expecting the first
/// frame to carry `expect_seq` and frames to stay contiguous across
/// segment boundaries. Stops at the first torn, corrupt, or
/// out-of-sequence frame; everything after it (in that segment *and* in
/// any later segment) is reported as discarded.
///
/// # Errors
///
/// Propagates I/O errors from reading segment files.
pub fn scan_from(dir: &Path, start: WalPosition, expect_seq: u64) -> io::Result<SegmentedScan> {
    let mut out = SegmentedScan {
        end: start,
        ..SegmentedScan::default()
    };
    let mut seq = expect_seq;
    let mut index = start.segment;
    let mut offset = start.offset;
    loop {
        let path = segment_file(dir, index);
        let s = wal::scan(&path, offset, seq)?;
        seq += s.frames.len() as u64;
        out.frames.extend(s.frames);
        out.end = WalPosition {
            segment: index,
            offset: s.valid_len,
        };
        if s.bytes_discarded > 0 {
            // Torn tail: later segments are unreachable (their sequence
            // numbers can no longer be trusted to be contiguous).
            out.frames_discarded = 1;
            out.bytes_discarded = s.bytes_discarded;
            let mut later = index + 1;
            while let Ok(meta) = fs::metadata(segment_file(dir, later)) {
                out.bytes_discarded += meta.len();
                later += 1;
            }
            return Ok(out);
        }
        if !segment_file(dir, index + 1).exists() {
            return Ok(out);
        }
        index += 1;
        offset = 0;
    }
}

/// A rotating, fixed-budget segmented WAL. Wraps a single-file [`Wal`] as
/// the active segment and seals it when it fills.
pub struct SegmentedWal {
    dir: PathBuf,
    active_index: u64,
    active: Wal,
    segment_bytes: u64,
    /// Durable bytes held by sealed segments still on disk.
    closed_bytes: u64,
}

impl SegmentedWal {
    /// Opens the segmented log under `dir` for appending at `end` (the
    /// valid position computed by [`scan_from`]). The end segment is
    /// truncated to `end.offset` (torn-write discard) and any
    /// higher-numbered segments — unreachable after a torn scan — are
    /// deleted. `next_seq` seeds sequence numbering; `segment_bytes` is
    /// the rotation budget.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening, truncating, or deleting files.
    pub fn open(
        dir: &Path,
        end: WalPosition,
        next_seq: u64,
        segment_bytes: u64,
    ) -> io::Result<SegmentedWal> {
        let mut closed_bytes = 0u64;
        for idx in list_segments(dir)? {
            if idx > end.segment {
                fs::remove_file(segment_file(dir, idx))?;
            } else if idx < end.segment {
                closed_bytes += fs::metadata(segment_file(dir, idx))?.len();
            }
        }
        let active = Wal::open(&segment_file(dir, end.segment), end.offset, next_seq)?;
        Ok(SegmentedWal {
            dir: dir.to_path_buf(),
            active_index: end.segment,
            active,
            segment_bytes,
            closed_bytes,
        })
    }

    /// Appends one batch frame, rotating first if the frame would push the
    /// active segment past its budget (a frame never spans segments; an
    /// oversized frame gets an empty segment to itself). Returns the
    /// frame's sequence number and refreshes the `wal_live_bytes` gauge.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the rotation fsync or the append; on a
    /// rotation error nothing was appended.
    pub fn append(&mut self, op: WalOp, edges: &[Edge], stats: &StructStats) -> io::Result<u64> {
        // Frame size: 8-byte binio header + 13-byte payload header + edges.
        let frame_bytes = 21 + edges.len() as u64 * 8;
        if self.active.logical_len() > 0
            && self.active.logical_len() + frame_bytes > self.segment_bytes
        {
            self.rotate(stats)?;
        }
        let seq = self.active.append(op, edges, stats)?;
        stats.record_wal_live_bytes(self.live_bytes());
        Ok(seq)
    }

    /// Seals the active segment (flush + fsync) and opens the next index.
    fn rotate(&mut self, stats: &StructStats) -> io::Result<()> {
        self.active.sync()?;
        fail_point!("wal_rotate");
        let sealed = self.active.logical_len();
        let next_index = self.active_index + 1;
        let next = Wal::open(
            &segment_file(&self.dir, next_index),
            0,
            self.active.next_seq(),
        )?;
        self.active = next;
        self.active_index = next_index;
        self.closed_bytes += sealed;
        stats.record_wal_segment_rotated();
        stats.record_wal_live_bytes(self.live_bytes());
        Ok(())
    }

    /// Flushes and fsyncs the active segment — the explicit durability
    /// point. Sealed segments were fsynced when they rotated out.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the flush or fsync.
    pub fn sync(&mut self) -> io::Result<()> {
        self.active.sync()
    }

    /// The append position: active segment index and its logical length
    /// (including group-commit-buffered frames).
    pub fn position(&self) -> WalPosition {
        WalPosition {
            segment: self.active_index,
            offset: self.active.logical_len(),
        }
    }

    /// Total live WAL bytes: sealed segments still on disk plus the active
    /// segment's logical length.
    pub fn live_bytes(&self) -> u64 {
        self.closed_bytes + self.active.logical_len()
    }

    /// Index of the active (append) segment.
    pub fn active_index(&self) -> u64 {
        self.active_index
    }

    /// The sequence number the next appended frame will get.
    pub fn next_seq(&self) -> u64 {
        self.active.next_seq()
    }

    /// Deletes sealed segments with index strictly below `cutoff` (clamped
    /// so the active segment is never deleted), evaluating the
    /// `segment_gc` failpoint before each unlink so crash tests can kill
    /// mid-GC. Records `wal_segments_deleted` and refreshes
    /// `wal_live_bytes`; returns `(segments_deleted, bytes_deleted)`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from listing or deleting files.
    pub fn delete_segments_below(
        &mut self,
        cutoff: u64,
        stats: &StructStats,
    ) -> io::Result<(u64, u64)> {
        let cutoff = cutoff.min(self.active_index);
        let mut deleted = 0u64;
        let mut bytes = 0u64;
        for idx in list_segments(&self.dir)? {
            if idx >= cutoff {
                break;
            }
            fail_point!("segment_gc");
            let path = segment_file(&self.dir, idx);
            let len = fs::metadata(&path)?.len();
            fs::remove_file(&path)?;
            self.closed_bytes = self.closed_bytes.saturating_sub(len);
            deleted += 1;
            bytes += len;
        }
        if deleted > 0 {
            stats.record_wal_segments_deleted(deleted);
            stats.record_wal_live_bytes(self.live_bytes());
        }
        Ok((deleted, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsgraph-seg-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn batch(n: u32) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, i + 1)).collect()
    }

    /// Small budget so a handful of frames forces several rotations.
    const SMALL: u64 = 256;

    #[test]
    fn appends_rotate_and_scan_spans_segments() {
        let dir = tmpdir("rotate");
        let stats = StructStats::new();
        let mut w = SegmentedWal::open(&dir, WalPosition::default(), 0, SMALL).unwrap();
        for _ in 0..10 {
            w.append(WalOp::Insert, &batch(10), &stats).unwrap();
        }
        w.sync().unwrap();
        assert!(w.active_index() > 0, "small budget must rotate");
        assert_eq!(
            stats.snapshot().wal_segments_rotated,
            w.active_index(),
            "one rotation per sealed segment"
        );
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len() as u64, w.active_index() + 1);
        let s = scan_from(&dir, WalPosition::default(), 0).unwrap();
        assert_eq!(s.frames.len(), 10);
        assert_eq!(s.frames_discarded, 0);
        assert_eq!(s.end, w.position());
        // Live bytes equals the sum of all segment files.
        let on_disk: u64 = segs
            .iter()
            .map(|&i| fs::metadata(segment_file(&dir, i)).unwrap().len())
            .sum();
        assert_eq!(w.live_bytes(), on_disk);
        assert_eq!(stats.snapshot().wal_live_bytes, on_disk);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_frame_gets_its_own_segment() {
        let dir = tmpdir("oversized");
        let stats = StructStats::new();
        let mut w = SegmentedWal::open(&dir, WalPosition::default(), 0, SMALL).unwrap();
        w.append(WalOp::Insert, &batch(2), &stats).unwrap();
        // Far larger than the budget: must still be appended whole.
        w.append(WalOp::Insert, &batch(500), &stats).unwrap();
        w.append(WalOp::Insert, &batch(2), &stats).unwrap();
        w.sync().unwrap();
        let s = scan_from(&dir, WalPosition::default(), 0).unwrap();
        assert_eq!(s.frames.len(), 3);
        assert_eq!(s.frames[1].edges.len(), 500);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_mid_chain_discards_later_segments() {
        let dir = tmpdir("torn");
        let stats = StructStats::new();
        let mut w = SegmentedWal::open(&dir, WalPosition::default(), 0, SMALL).unwrap();
        for _ in 0..9 {
            w.append(WalOp::Insert, &batch(10), &stats).unwrap();
        }
        w.sync().unwrap();
        assert!(w.active_index() >= 2, "need at least three segments");
        // Tear a frame in segment 1: everything from there on is lost.
        let p1 = segment_file(&dir, 1);
        let bytes = fs::read(&p1).unwrap();
        fs::write(&p1, &bytes[..bytes.len() - 3]).unwrap();
        let s = scan_from(&dir, WalPosition::default(), 0).unwrap();
        assert_eq!(s.frames_discarded, 1);
        assert_eq!(s.end.segment, 1);
        assert!(s.bytes_discarded > 0);
        let seg0_frames = wal::scan(&segment_file(&dir, 0), 0, 0)
            .unwrap()
            .frames
            .len();
        assert!(
            s.frames.len() > seg0_frames,
            "segment 1's intact prefix replays"
        );
        assert!(s.frames.len() < 9);
        // Reopening at the scan end truncates segment 1 and deletes 2+.
        let w = SegmentedWal::open(&dir, s.end, s.frames.len() as u64, SMALL).unwrap();
        assert_eq!(w.active_index(), 1);
        assert_eq!(list_segments(&dir).unwrap(), vec![0, 1]);
        let again = scan_from(&dir, WalPosition::default(), 0).unwrap();
        assert_eq!(again.frames.len(), s.frames.len());
        assert_eq!(again.frames_discarded, 0, "second scan is clean");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_resumes_mid_segment_from_a_position() {
        let dir = tmpdir("resume");
        let stats = StructStats::new();
        let mut w = SegmentedWal::open(&dir, WalPosition::default(), 0, SMALL).unwrap();
        let mut positions = Vec::new();
        for _ in 0..8 {
            positions.push(w.position());
            w.append(WalOp::Insert, &batch(10), &stats).unwrap();
        }
        w.sync().unwrap();
        // Replaying from the position before frame k yields frames k..8.
        for (k, &pos) in positions.iter().enumerate() {
            let s = scan_from(&dir, pos, k as u64).unwrap();
            assert_eq!(s.frames.len(), 8 - k, "from position {pos:?}");
            if let Some(f) = s.frames.first() {
                assert_eq!(f.seq, k as u64);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_deletes_only_below_cutoff_and_never_the_active_segment() {
        let dir = tmpdir("gc");
        let stats = StructStats::new();
        let mut w = SegmentedWal::open(&dir, WalPosition::default(), 0, SMALL).unwrap();
        for _ in 0..10 {
            w.append(WalOp::Insert, &batch(10), &stats).unwrap();
        }
        w.sync().unwrap();
        let active = w.active_index();
        assert!(active >= 2);
        let (n, bytes) = w.delete_segments_below(2, &stats).unwrap();
        assert_eq!(n, 2);
        assert!(bytes > 0);
        assert_eq!(stats.snapshot().wal_segments_deleted, 2);
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs[0], 2);
        // A cutoff past the active segment is clamped: the active file and
        // its sealed predecessors up to it survive only below the clamp.
        let (n, _) = w.delete_segments_below(u64::MAX, &stats).unwrap();
        assert_eq!(n, active - 2, "everything sealed below the active index");
        assert_eq!(list_segments(&dir).unwrap(), vec![active]);
        // Replay from the oldest surviving position still works.
        let s = scan_from(
            &dir,
            WalPosition {
                segment: active,
                offset: 0,
            },
            // Frames 0.. landed in deleted segments; count what survived.
            10 - wal_frames_in(&dir, active),
        )
        .unwrap();
        assert_eq!(s.frames_discarded, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn wal_frames_in(dir: &Path, index: u64) -> u64 {
        // Sequence-agnostic frame count of one segment: scan with the
        // first frame's own seq.
        let raw = fs::read(segment_file(dir, index)).unwrap();
        if raw.len() < 16 {
            return 0;
        }
        let seq = u64::from_le_bytes(raw[8..16].try_into().unwrap());
        wal::scan(&segment_file(dir, index), 0, seq)
            .unwrap()
            .frames
            .len() as u64
    }

    #[test]
    fn crash_between_seal_and_create_reopens_cleanly() {
        // Simulate the rotation crash window: a sealed, full segment with
        // no successor file. Reopen must land at its end and the next
        // append must rotate.
        let dir = tmpdir("crashwin");
        let stats = StructStats::new();
        let mut w = SegmentedWal::open(&dir, WalPosition::default(), 0, 64).unwrap();
        w.append(WalOp::Insert, &batch(10), &stats).unwrap();
        w.sync().unwrap();
        assert_eq!(w.active_index(), 0, "single oversized frame stays put");
        drop(w);
        let s = scan_from(&dir, WalPosition::default(), 0).unwrap();
        let mut w = SegmentedWal::open(&dir, s.end, 1, 64).unwrap();
        assert_eq!(w.active_index(), 0);
        w.append(WalOp::Insert, &batch(1), &stats).unwrap();
        assert_eq!(w.active_index(), 1, "append past a full segment rotates");
        std::fs::remove_dir_all(&dir).ok();
    }
}
