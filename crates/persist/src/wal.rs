//! The write-ahead log: batches as length-prefixed, checksummed frames.
//!
//! Every update batch is appended to the log *before* the in-memory engine
//! applies it, so a crash can lose at most the batches that were never
//! acknowledged by a [`Wal::sync`]. Frames use the shared
//! [`lsgraph_gen::binio`] layout (`u32 LE len | u32 LE CRC32 | payload`);
//! the payload is
//!
//! ```text
//! u64 LE sequence number | u8 op (1 = insert, 2 = delete)
//! | u32 LE edge count | count × (u32 LE src, u32 LE dst)
//! ```
//!
//! Sequence numbers are assigned contiguously from 0 and recorded in
//! checkpoints, so recovery can pair a checkpoint with exactly the WAL tail
//! it does not cover and detect a mismatched or re-initialized log.
//!
//! **Group commit**: appends go to an in-memory buffer and are written out
//! when the buffer passes [`Wal::GROUP_COMMIT_BYTES`] or on an explicit
//! [`Wal::sync`] (which also fsyncs). Between syncs, buffered frames are
//! volatile by design — that is the throughput/durability trade every WAL
//! makes.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

use lsgraph_api::{fail_point, Edge, StructStats};
use lsgraph_gen::binio;

/// Operation carried by one WAL frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// The frame's edges were inserted.
    Insert,
    /// The frame's edges were deleted.
    Delete,
}

impl WalOp {
    fn to_byte(self) -> u8 {
        match self {
            WalOp::Insert => 1,
            WalOp::Delete => 2,
        }
    }

    fn from_byte(b: u8) -> Option<WalOp> {
        match b {
            1 => Some(WalOp::Insert),
            2 => Some(WalOp::Delete),
            _ => None,
        }
    }
}

/// One decoded WAL frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalFrame {
    /// Contiguous sequence number assigned at append time.
    pub seq: u64,
    /// Insert or delete.
    pub op: WalOp,
    /// The batch exactly as it was logged.
    pub edges: Vec<Edge>,
}

/// Result of scanning a WAL file from a checkpoint-covered offset.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Frames that decoded cleanly with contiguous sequence numbers.
    pub frames: Vec<WalFrame>,
    /// File offset just past the last valid frame — the truncation point.
    pub valid_len: u64,
    /// Bytes past `valid_len` (torn or corrupt; to be discarded).
    pub bytes_discarded: u64,
    /// Frames lost to the torn tail. Truncation stops at the first bad
    /// frame, and whatever follows is indistinguishable from garbage, so
    /// this counts the truncation event: 1 if any bytes were discarded.
    pub frames_discarded: u64,
}

/// An append-only write-ahead log with group-commit buffering.
pub struct Wal {
    file: File,
    /// Bytes the file durably holds (everything flushed out of `buf`).
    file_len: u64,
    /// Group-commit buffer of encoded frames not yet written to the file.
    buf: Vec<u8>,
    /// Next sequence number to assign.
    next_seq: u64,
}

impl Wal {
    /// Buffered bytes that trigger an automatic (non-fsync) flush.
    pub const GROUP_COMMIT_BYTES: usize = 64 * 1024;

    /// Opens (or creates) the log at `path`, appending after `len` bytes.
    ///
    /// `len` must be a frame boundary — recovery computes it via
    /// [`scan`] — and the file is truncated to it, which is exactly the
    /// torn-write-discard step. `next_seq` seeds sequence numbering.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening or truncating the file.
    pub fn open(path: &Path, len: u64, next_seq: u64) -> io::Result<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(len)?;
        Ok(Wal {
            file,
            file_len: len,
            buf: Vec::new(),
            next_seq,
        })
    }

    /// Appends one batch frame to the group-commit buffer, returning its
    /// sequence number. Records `wal_frames_appended` into `stats`. The
    /// frame becomes crash-durable only at the next [`Wal::sync`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from an automatic group-commit flush.
    pub fn append(&mut self, op: WalOp, edges: &[Edge], stats: &StructStats) -> io::Result<u64> {
        fail_point!("wal_append");
        let seq = self.next_seq;
        let mut payload = Vec::with_capacity(13 + edges.len() * 8);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.push(op.to_byte());
        payload.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for e in edges {
            payload.extend_from_slice(&e.src.to_le_bytes());
            payload.extend_from_slice(&e.dst.to_le_bytes());
        }
        binio::write_frame(&mut self.buf, &payload).expect("Vec write is infallible");
        self.next_seq += 1;
        stats.record_wal_frame_appended();
        if self.buf.len() >= Self::GROUP_COMMIT_BYTES {
            self.flush()?;
        }
        Ok(seq)
    }

    /// Writes buffered frames to the file without fsyncing.
    fn flush(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file.seek(SeekFrom::Start(self.file_len))?;
        self.file.write_all(&self.buf)?;
        self.file_len += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flushes buffered frames and fsyncs — the explicit durability point.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on error the unflushed frames stay buffered.
    pub fn sync(&mut self) -> io::Result<()> {
        fail_point!("wal_sync");
        self.flush()?;
        self.file.sync_data()
    }

    /// Log length in bytes including still-buffered frames.
    pub fn logical_len(&self) -> u64 {
        self.file_len + self.buf.len() as u64
    }

    /// Bytes durably written to the file (excludes the group-commit buffer).
    pub fn synced_len(&self) -> u64 {
        self.file_len
    }

    /// The sequence number the next appended frame will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// Decodes one frame payload; `None` on any structural mismatch.
fn decode_payload(payload: &[u8]) -> Option<WalFrame> {
    if payload.len() < 13 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let op = WalOp::from_byte(payload[8])?;
    let count = u32::from_le_bytes(payload[9..13].try_into().ok()?) as usize;
    let body = &payload[13..];
    if body.len() != count * 8 {
        return None;
    }
    let edges = body
        .chunks_exact(8)
        .map(|c| {
            Edge::new(
                u32::from_le_bytes(c[0..4].try_into().expect("4-byte slice")),
                u32::from_le_bytes(c[4..8].try_into().expect("4-byte slice")),
            )
        })
        .collect();
    Some(WalFrame { seq, op, edges })
}

/// Scans the log at `path` from byte offset `from`, expecting the first
/// frame to carry sequence number `expect_seq` and subsequent frames to be
/// contiguous. Stops at the first torn, corrupt, or out-of-sequence frame;
/// everything after it is reported as discarded.
///
/// A missing file scans as empty (nothing was ever logged).
///
/// # Errors
///
/// Propagates I/O errors from reading the file.
pub fn scan(path: &Path, from: u64, mut expect_seq: u64) -> io::Result<WalScan> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(WalScan {
                valid_len: from,
                ..WalScan::default()
            })
        }
        Err(e) => return Err(e),
    };
    file.seek(SeekFrom::Start(from))?;
    let mut tail = Vec::new();
    file.read_to_end(&mut tail)?;
    let mut scan = WalScan {
        valid_len: from,
        ..WalScan::default()
    };
    let mut pos = 0usize;
    while pos < tail.len() {
        let Some((payload, consumed)) = binio::parse_frame(&tail[pos..]) else {
            break;
        };
        let Some(frame) = decode_payload(payload) else {
            break;
        };
        if frame.seq != expect_seq {
            break;
        }
        expect_seq += 1;
        scan.frames.push(frame);
        pos += consumed;
    }
    scan.valid_len = from + pos as u64;
    scan.bytes_discarded = (tail.len() - pos) as u64;
    scan.frames_discarded = u64::from(scan.bytes_discarded > 0);
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("lsgraph-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn batch(n: u32) -> Vec<Edge> {
        (0..n).map(|i| Edge::new(i, i + 1)).collect()
    }

    #[test]
    fn append_sync_scan_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let stats = StructStats::new();
        let mut wal = Wal::open(&path, 0, 0).unwrap();
        assert_eq!(wal.append(WalOp::Insert, &batch(5), &stats).unwrap(), 0);
        assert_eq!(wal.append(WalOp::Delete, &batch(2), &stats).unwrap(), 1);
        assert_eq!(stats.snapshot().wal_frames_appended, 2);
        // Buffered, not yet in the file.
        assert_eq!(wal.synced_len(), 0);
        assert!(wal.logical_len() > 0);
        wal.sync().unwrap();
        assert_eq!(wal.synced_len(), wal.logical_len());
        let scan = scan(&path, 0, 0).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[0].op, WalOp::Insert);
        assert_eq!(scan.frames[0].edges, batch(5));
        assert_eq!(scan.frames[1].op, WalOp::Delete);
        assert_eq!(scan.frames[1].seq, 1);
        assert_eq!(scan.bytes_discarded, 0);
        assert_eq!(scan.frames_discarded, 0);
        assert_eq!(scan.valid_len, wal.synced_len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_detected_and_bounded() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let stats = StructStats::new();
        let mut wal = Wal::open(&path, 0, 0).unwrap();
        for i in 0..3 {
            wal.append(WalOp::Insert, &batch(4 + i), &stats).unwrap();
        }
        wal.sync().unwrap();
        let full = std::fs::metadata(&path).unwrap().len();
        // Tear the last frame: chop 3 bytes off.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let s = scan(&path, 0, 0).unwrap();
        assert_eq!(s.frames.len(), 2, "only the intact prefix replays");
        assert_eq!(s.frames_discarded, 1);
        assert!(s.bytes_discarded > 0);
        assert!(s.valid_len < full);
        // Re-opening at the truncation point discards the torn bytes and
        // appending resumes cleanly.
        let mut wal = Wal::open(&path, s.valid_len, 2).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), s.valid_len);
        wal.append(WalOp::Insert, &batch(9), &stats).unwrap();
        wal.sync().unwrap();
        let s = scan(&path, 0, 0).unwrap();
        assert_eq!(s.frames.len(), 3);
        assert_eq!(s.frames[2].edges, batch(9));
        assert_eq!(s.frames_discarded, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_sequence_frames_stop_the_scan() {
        let dir = tmpdir("seq");
        let path = dir.join("wal.log");
        let stats = StructStats::new();
        let mut wal = Wal::open(&path, 0, 7).unwrap();
        wal.append(WalOp::Insert, &batch(1), &stats).unwrap();
        wal.sync().unwrap();
        // Expecting seq 0 but the log starts at 7: nothing replays.
        let s = scan(&path, 0, 0).unwrap();
        assert!(s.frames.is_empty());
        assert_eq!(s.frames_discarded, 1);
        // Expecting seq 7 replays it.
        let s = scan(&path, 0, 7).unwrap();
        assert_eq!(s.frames.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_flushes_past_threshold() {
        let dir = tmpdir("group");
        let path = dir.join("wal.log");
        let stats = StructStats::new();
        let mut wal = Wal::open(&path, 0, 0).unwrap();
        // One big batch exceeds the group-commit buffer and auto-flushes
        // (without fsync — sync() is still the durability point).
        let big: Vec<Edge> = (0..20_000u32).map(|i| Edge::new(i, i)).collect();
        wal.append(WalOp::Insert, &big, &stats).unwrap();
        assert!(wal.synced_len() > 0, "threshold crossing must flush");
        assert_eq!(wal.synced_len(), wal.logical_len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_scans_empty() {
        let dir = tmpdir("missing");
        let s = scan(&dir.join("nope.log"), 0, 0).unwrap();
        assert!(s.frames.is_empty());
        assert_eq!(s.bytes_discarded, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
