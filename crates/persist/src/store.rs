//! The durable store: an [`LsGraph`] fronted by a segmented WAL, with
//! tier-aware full/delta checkpoints, retention GC, and crash recovery.
//!
//! Write path: every batch is appended to the WAL **before**
//! [`LsGraph::try_insert_batch`] / [`try_delete_batch`] applies it
//! (write-ahead rule), so the log is always a superset of the in-memory
//! state up to group-commit buffering. [`Store::sync`] is the durability
//! point; [`Store::checkpoint`] syncs the log and freezes either the full
//! hierarchical representation or — when a delta chain is open and the
//! dirty working set is small — just the vertices dirtied since the last
//! image ([`StoreOptions::delta_ratio`], [`StoreOptions::max_delta_chain`]).
//!
//! Recovery ([`Store::open`]): load the newest recoverable checkpoint
//! chain (full image + linked deltas, degrading past corruption), prune
//! the unusable image suffix, replay the WAL tail from the chain tip's
//! recorded `(segment, offset)` position, and physically truncate the log
//! at the first torn or corrupt frame. The caller gets a
//! [`RecoveryReport`]; the stats counters `recovery_frames_replayed` /
//! `recovery_frames_discarded` / `recovery_images_discarded` are updated.
//!
//! Storage stays bounded via [`Store::run_retention`] (delete images and
//! WAL segments strictly older than the newest *verified* chain) and
//! [`Store::compact`] (fold a delta chain into a full image).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lsgraph_api::{fail_point, Edge, Graph};
use lsgraph_core::{BatchOutcome, Config, GraphError, GraphSnapshot, LsGraph};

use crate::checkpoint::{self, CheckpointMeta};
use crate::retention::{self, GcReport};
use crate::segment::{self, SegmentedScan, SegmentedWal, WalPosition};
use crate::wal::WalOp;

/// Name of the legacy single-file write-ahead log. A store directory laid
/// out by an older build is migrated on open: `wal.log` becomes segment
/// `wal.000000` and rotation proceeds from there.
pub const WAL_FILE: &str = "wal.log";

/// Tuning knobs for a [`Store`], all with conservative defaults.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Byte budget of one WAL segment; an append that would overflow the
    /// active segment rotates to the next one first. Frames never split:
    /// a frame larger than the budget gets a segment to itself.
    pub segment_bytes: u64,
    /// A checkpoint is written as a delta only while
    /// `dirty_vertices <= delta_ratio * num_vertices`; above that, a full
    /// image is cheaper to recover than a fat delta is to write.
    pub delta_ratio: f64,
    /// Maximum deltas chained on one full image before the next
    /// checkpoint is forced full (bounds recovery's chain walk).
    pub max_delta_chain: u64,
    /// Run a retention pass ([`Store::run_retention`]) automatically after
    /// every successful checkpoint.
    pub auto_retention: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            segment_bytes: 8 * 1024 * 1024,
            delta_ratio: 0.25,
            max_delta_chain: 8,
            auto_retention: false,
        }
    }
}

/// Errors from store operations: I/O from the durability layer, or a
/// structural error surfaced by the engine's fallible batch API.
#[derive(Debug)]
pub enum StoreError {
    /// The WAL, checkpoint, or manifest I/O failed.
    Io(io::Error),
    /// The engine rejected the operation.
    Graph(GraphError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Graph(e) => write!(f, "store graph error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}

/// What [`Store::open`] reconstructed and what it had to throw away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Id of the checkpoint chain tip loaded, if any.
    pub checkpoint_loaded: Option<u64>,
    /// WAL frames replayed through the batch pipeline.
    pub frames_replayed: u64,
    /// Truncation events in the WAL tail (1 if a torn/corrupt tail was cut).
    pub frames_discarded: u64,
    /// Bytes discarded from the torn tail (including unreachable later
    /// segments).
    pub bytes_discarded: u64,
    /// Checkpoint images discarded: corrupt fulls skipped on the way to a
    /// valid base plus deltas past the first broken chain link.
    pub images_discarded: u64,
    /// Delta images applied on top of the base full image.
    pub chain_len: u64,
    /// Edges in the graph after recovery completed.
    pub edges_restored: u64,
    /// Sequence number the next logged batch will carry — equivalently, the
    /// number of batches (checkpointed + replayed) the recovered state holds.
    pub next_seq: u64,
}

/// The open delta chain: id of the image the next delta would link to and
/// how many deltas already hang off the base full image.
#[derive(Clone, Copy, Debug)]
struct ChainState {
    parent_id: u64,
    len: u64,
}

/// A durable [`LsGraph`]: segmented WAL + checkpoint chains + recovery in
/// one directory.
pub struct Store {
    dir: PathBuf,
    graph: LsGraph,
    wal: SegmentedWal,
    next_checkpoint_id: u64,
    opts: StoreOptions,
    /// `Some` while the next checkpoint may legally be a delta; `None`
    /// forces it full (cold start, after a write error, or after
    /// [`Store::begin_checkpoint`] claimed an id out of band).
    chain: Option<ChainState>,
}

impl Store {
    /// Opens the store at `dir` with default [`StoreOptions`]; see
    /// [`Store::open_with`].
    ///
    /// # Errors
    ///
    /// As for [`Store::open_with`].
    pub fn open(dir: &Path, n: usize, cfg: Config) -> Result<(Store, RecoveryReport), StoreError> {
        Store::open_with(dir, n, cfg, StoreOptions::default())
    }

    /// Opens the store at `dir` (created if missing), running recovery:
    /// newest recoverable checkpoint chain, then WAL-tail replay from the
    /// chain tip's `(segment, offset)`, then torn-tail truncation. Images
    /// past the usable chain (corrupt fulls, orphaned deltas) are pruned
    /// so they cannot shadow or poison later checkpoints. `n` sizes a
    /// cold-start graph; an existing image's own vertex count wins (the
    /// graph grows lazily past either bound).
    ///
    /// A legacy single-file `wal.log` is migrated to segment `wal.000000`.
    ///
    /// # Errors
    ///
    /// I/O errors from the directory, WAL, or checkpoint files; a config
    /// rejected by the engine; or a replay failure from the batch pipeline.
    /// Individually corrupt checkpoint images are skipped, not errors.
    pub fn open_with(
        dir: &Path,
        n: usize,
        cfg: Config,
        opts: StoreOptions,
    ) -> Result<(Store, RecoveryReport), StoreError> {
        fs::create_dir_all(dir)?;
        let legacy = dir.join(WAL_FILE);
        let seg0 = segment::segment_file(dir, 0);
        if legacy.exists() && !seg0.exists() {
            fs::rename(&legacy, &seg0)?;
        }
        let (restored, info) = checkpoint::load_newest_chain(dir, cfg)?;
        let (mut graph, ckpt) = match restored {
            Some((g, meta)) => (g, Some(meta)),
            None => (
                LsGraph::try_with_config(n, cfg).map_err(GraphError::InvalidConfig)?,
                None,
            ),
        };
        if ckpt.is_some() {
            prune_unusable_images(dir, info.base_id, info.tip_id)?;
        }
        let (start, mut next_seq) = ckpt.map_or((WalPosition::default(), 0), |m| {
            (
                WalPosition {
                    segment: m.wal_segment,
                    offset: m.wal_offset,
                },
                m.next_seq,
            )
        });
        // From here on the dirty set tracks exactly what the loaded chain
        // tip does **not** cover: replayed frames and future batches.
        graph.clear_dirty();
        let scan: SegmentedScan = segment::scan_from(dir, start, next_seq)?;
        let mut frames_replayed = 0u64;
        for frame in &scan.frames {
            fail_point!("recovery_replay");
            match frame.op {
                WalOp::Insert => graph.try_insert_batch(&frame.edges)?,
                WalOp::Delete => graph.try_delete_batch(&frame.edges)?,
            };
            graph.stats().record_recovery_frame_replayed();
            frames_replayed += 1;
        }
        graph
            .stats()
            .record_recovery_frames_discarded(scan.frames_discarded);
        graph
            .stats()
            .record_recovery_images_discarded(info.images_discarded);
        next_seq += frames_replayed;
        let wal = SegmentedWal::open(dir, scan.end, next_seq, opts.segment_bytes)?;
        graph.stats().record_wal_live_bytes(wal.live_bytes());
        let report = RecoveryReport {
            checkpoint_loaded: ckpt.map(|m| m.id),
            frames_replayed,
            frames_discarded: scan.frames_discarded,
            bytes_discarded: scan.bytes_discarded,
            images_discarded: info.images_discarded,
            chain_len: info.chain_len,
            edges_restored: graph.num_edges() as u64,
            next_seq,
        };
        let store = Store {
            dir: dir.to_path_buf(),
            graph,
            wal,
            next_checkpoint_id: ckpt.map_or(1, |m| m.id + 1),
            opts,
            // A surviving chain keeps accepting deltas across restarts.
            chain: ckpt.map(|m| ChainState {
                parent_id: m.id,
                len: info.chain_len,
            }),
        };
        Ok((store, report))
    }

    /// Logs `batch` to the WAL, then inserts it. The frame is crash-durable
    /// only after the next [`Store::sync`] (group commit).
    ///
    /// # Errors
    ///
    /// WAL I/O errors (the batch is then *not* applied), or an engine error
    /// from the fallible batch pipeline.
    pub fn insert_batch(&mut self, batch: &[Edge]) -> Result<BatchOutcome, StoreError> {
        self.wal.append(WalOp::Insert, batch, self.graph.stats())?;
        Ok(self.graph.try_insert_batch(batch)?)
    }

    /// Logs `batch` to the WAL, then deletes it. Mirrors
    /// [`Store::insert_batch`].
    ///
    /// # Errors
    ///
    /// WAL I/O errors (the batch is then *not* applied), or an engine error
    /// from the fallible batch pipeline.
    pub fn delete_batch(&mut self, batch: &[Edge]) -> Result<BatchOutcome, StoreError> {
        self.wal.append(WalOp::Delete, batch, self.graph.stats())?;
        Ok(self.graph.try_delete_batch(batch)?)
    }

    /// Flushes and fsyncs the WAL — everything logged so far becomes
    /// crash-durable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the flush or fsync.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        Ok(self.wal.sync()?)
    }

    /// Syncs the WAL, then writes a checkpoint image covering the entire
    /// log so far. While a delta chain is open and the dirty working set
    /// is within [`StoreOptions::delta_ratio`], the image is a
    /// dirty-vertex **delta**; otherwise (cold chain, chain at
    /// [`StoreOptions::max_delta_chain`], or a large working set) it is a
    /// full image that roots a fresh chain. Recovery from the written
    /// image replays nothing unless more batches land afterwards.
    ///
    /// Records `delta_checkpoints_written` and the
    /// `checkpoint_dirty_vertices` gauge.
    ///
    /// # Errors
    ///
    /// Propagates WAL sync and image-write I/O errors; a failed image
    /// write never clobbers an older checkpoint, and it closes the chain
    /// so the next attempt is a self-contained full image.
    pub fn checkpoint(&mut self) -> Result<CheckpointMeta, StoreError> {
        self.wal.sync()?;
        let pos = self.wal.position();
        let next_seq = self.wal.next_seq();
        let id = self.next_checkpoint_id;
        let dirty = self.graph.dirty_count() as u64;
        let use_delta = self.chain.is_some_and(|c| {
            c.len < self.opts.max_delta_chain
                && dirty as f64 <= self.opts.delta_ratio * self.graph.num_vertices() as f64
        });
        let write = if use_delta {
            let chain = self.chain.expect("use_delta implies an open chain");
            let dirty_vs = self.graph.dirty_vertices();
            checkpoint::write_delta_checkpoint(
                &self.dir,
                id,
                chain.parent_id,
                &self.graph,
                &dirty_vs,
                pos.segment,
                pos.offset,
                next_seq,
            )
            .map(|m| (m, Some(chain)))
        } else {
            checkpoint::write_checkpoint(
                &self.dir,
                id,
                &self.graph,
                pos.segment,
                pos.offset,
                next_seq,
            )
            .map(|m| (m, None))
        };
        let (meta, continued) = match write {
            Ok(ok) => ok,
            Err(e) => {
                // A half-attempted image closes the chain: the next
                // checkpoint must be full and self-contained.
                self.chain = None;
                return Err(e.into());
            }
        };
        self.graph.clear_dirty();
        self.graph.stats().record_checkpoint_dirty_vertices(dirty);
        self.chain = Some(match continued {
            Some(c) => {
                self.graph.stats().record_delta_checkpoint_written();
                ChainState {
                    parent_id: id,
                    len: c.len + 1,
                }
            }
            None => ChainState {
                parent_id: id,
                len: 0,
            },
        });
        self.next_checkpoint_id = id + 1;
        if self.opts.auto_retention {
            self.run_retention()?;
        }
        Ok(meta)
    }

    /// Syncs the WAL and freezes a checkpoint *without writing it*: the
    /// returned [`PendingCheckpoint`] captures a [`GraphSnapshot`] plus the
    /// WAL position it covers, and can be moved to another thread and
    /// written there while this store keeps logging and applying batches.
    /// Batches that land after this call are simply not covered by the
    /// image — recovery replays them from the WAL tail, exactly as with a
    /// synchronous [`Store::checkpoint`].
    ///
    /// A background checkpoint is always a **full** image, and claiming it
    /// closes any open delta chain (the pending image may land later or
    /// never, so chaining deltas across it cannot be proven safe). The
    /// dirty set is drained here: the frozen snapshot covers everything up
    /// to the flip point.
    ///
    /// The checkpoint id is claimed eagerly, so interleaved synchronous
    /// checkpoints never collide with a pending one. A pending checkpoint
    /// that is dropped unwritten leaves a gap in the id sequence, which
    /// recovery tolerates (it scans for the newest valid image).
    ///
    /// # Errors
    ///
    /// Propagates WAL sync I/O errors; the snapshot itself cannot fail.
    pub fn begin_checkpoint(&mut self) -> Result<PendingCheckpoint, StoreError> {
        self.wal.sync()?;
        let pos = self.wal.position();
        let pending = PendingCheckpoint {
            dir: self.dir.clone(),
            id: self.next_checkpoint_id,
            snapshot: self.graph.snapshot(),
            wal_segment: pos.segment,
            wal_offset: pos.offset,
            next_seq: self.wal.next_seq(),
        };
        self.next_checkpoint_id += 1;
        self.chain = None;
        self.graph.clear_dirty();
        Ok(pending)
    }

    /// One retention pass: verify the newest recoverable chain by loading
    /// it from disk, then delete every image strictly older than its base
    /// and every WAL segment below the chain tip's replay segment (the
    /// active segment is never deleted). Deletes **nothing** unless a
    /// chain verifies. Records `wal_segments_deleted` and refreshes the
    /// `wal_live_bytes` gauge.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the verification load or the unlinks.
    pub fn run_retention(&mut self) -> Result<GcReport, StoreError> {
        let mut report = GcReport::default();
        let cut = retention::collect_image_garbage(&self.dir, *self.graph.config(), &mut report)?;
        if let Some(cut) = cut {
            let (n, bytes) = self
                .wal
                .delete_segments_below(cut.tip.wal_segment, self.graph.stats())?;
            report.segments_deleted = n;
            report.segment_bytes_deleted = bytes;
        }
        Ok(report)
    }

    /// Folds the current delta chain into a full image at the chain tip's
    /// id (see [`retention::compact_chain`]); `Ok(None)` when there is no
    /// chain to fold. After compaction the next checkpoint chains deltas
    /// off the freshly compacted full image.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the chain load or image write.
    pub fn compact(&mut self) -> Result<Option<CheckpointMeta>, StoreError> {
        match retention::compact_chain(&self.dir, *self.graph.config())? {
            Some(meta) => {
                if self.chain.is_some() {
                    self.chain = Some(ChainState {
                        parent_id: meta.id,
                        len: 0,
                    });
                }
                Ok(Some(meta))
            }
            None => Ok(None),
        }
    }

    /// The recovered / live graph.
    pub fn graph(&self) -> &LsGraph {
        &self.graph
    }

    /// Mutable access for out-of-band surgery (e.g.
    /// [`LsGraph::repair_vertex`]). Such mutations bypass the WAL: they are
    /// durable only once a subsequent [`Store::checkpoint`] freezes them.
    pub fn graph_mut(&mut self) -> &mut LsGraph {
        &mut self.graph
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total live WAL bytes across all segments, including
    /// group-commit-buffered frames in the active one.
    pub fn wal_len(&self) -> u64 {
        self.wal.live_bytes()
    }

    /// The append position: active segment index and offset.
    pub fn wal_position(&self) -> WalPosition {
        self.wal.position()
    }

    /// The sequence number the next logged batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }
}

/// Deletes image files recovery proved unusable: full images newer than
/// the chosen base (they failed to load) and delta images newer than the
/// applied tip (corrupt or orphaned past a broken link). Without this, a
/// later checkpoint could reuse an orphan's id or a stale delta could
/// masquerade as a link in a future chain.
fn prune_unusable_images(dir: &Path, base_id: u64, tip_id: u64) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_prefix("checkpoint-") else {
            continue;
        };
        let doomed = match (stem.strip_suffix(".img"), stem.strip_suffix(".dlt")) {
            (Some(id), None) => id.parse::<u64>().map(|id| id > base_id),
            (None, Some(id)) => id.parse::<u64>().map(|id| id > tip_id),
            _ => continue,
        };
        if doomed == Ok(true) {
            fs::remove_file(&path)?;
        }
    }
    Ok(())
}

/// A checkpoint frozen by [`Store::begin_checkpoint`] but not yet written.
///
/// Holds a [`GraphSnapshot`] of the flip point, so it is `Send` and the
/// image write ([`PendingCheckpoint::write`]) can run on a background
/// thread concurrently with the store's writer. The snapshot's block
/// versions stay alive (and count toward the epoch-reclamation backlog)
/// until the pending checkpoint is written or dropped.
pub struct PendingCheckpoint {
    dir: PathBuf,
    id: u64,
    snapshot: GraphSnapshot,
    wal_segment: u64,
    wal_offset: u64,
    next_seq: u64,
}

impl PendingCheckpoint {
    /// The checkpoint id the image will carry.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// WAL position the image covers; replay resumes here.
    pub fn wal_position(&self) -> WalPosition {
        WalPosition {
            segment: self.wal_segment,
            offset: self.wal_offset,
        }
    }

    /// The frozen state the image will serialize.
    pub fn snapshot(&self) -> &GraphSnapshot {
        &self.snapshot
    }

    /// Serializes the frozen snapshot into its (full) image and updates
    /// the manifest, consuming the pending checkpoint (and releasing the
    /// snapshot's hold on retired block versions).
    ///
    /// # Errors
    ///
    /// Propagates image-write I/O errors; a failed write never clobbers an
    /// older checkpoint.
    pub fn write(self) -> io::Result<CheckpointMeta> {
        checkpoint::write_checkpoint(
            &self.dir,
            self.id,
            &self.snapshot,
            self.wal_segment,
            self.wal_offset,
            self.next_seq,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{checkpoint_file, delta_file};
    use crate::segment::segment_file;
    use std::collections::BTreeSet;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsgraph-store-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn cfg() -> Config {
        Config {
            m: 256,
            ..Config::default()
        }
    }

    /// Deterministic mixed workload: `rounds` insert batches with a delete
    /// batch every third round.
    fn workload(rounds: u64) -> Vec<(WalOp, Vec<Edge>)> {
        let mut out = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for r in 0..rounds {
            let mut ins = Vec::new();
            for _ in 0..40 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let src = ((x >> 33) % 64) as u32;
                let dst = ((x >> 17) % 500) as u32;
                ins.push(Edge::new(src, dst));
            }
            out.push((WalOp::Insert, ins.clone()));
            if r % 3 == 2 {
                let del = ins.iter().step_by(4).copied().collect();
                out.push((WalOp::Delete, del));
            }
        }
        out
    }

    fn shadow(batches: &[(WalOp, Vec<Edge>)]) -> BTreeSet<(u32, u32)> {
        let mut s = BTreeSet::new();
        for (op, b) in batches {
            for e in b {
                match op {
                    WalOp::Insert => {
                        s.insert((e.src, e.dst));
                    }
                    WalOp::Delete => {
                        s.remove(&(e.src, e.dst));
                    }
                }
            }
        }
        s
    }

    fn assert_matches_shadow(g: &LsGraph, s: &BTreeSet<(u32, u32)>) {
        assert_eq!(g.num_edges(), s.len());
        for v in 0..g.num_vertices() as u32 {
            let want: Vec<u32> = s.range((v, 0)..=(v, u32::MAX)).map(|&(_, d)| d).collect();
            assert_eq!(g.neighbors(v), want, "vertex {v}");
        }
        g.check_invariants();
    }

    fn run(store: &mut Store, batches: &[(WalOp, Vec<Edge>)]) {
        for (op, b) in batches {
            match op {
                WalOp::Insert => store.insert_batch(b).unwrap(),
                WalOp::Delete => store.delete_batch(b).unwrap(),
            };
        }
    }

    #[test]
    fn cold_start_log_replay() {
        let dir = tmpdir("cold");
        let batches = workload(12);
        {
            let (mut store, report) = Store::open(&dir, 64, cfg()).unwrap();
            assert_eq!(report, RecoveryReport::default());
            run(&mut store, &batches);
            store.sync().unwrap();
        }
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.checkpoint_loaded, None);
        assert_eq!(report.frames_replayed, batches.len() as u64);
        assert_eq!(report.frames_discarded, 0);
        assert_eq!(report.next_seq, batches.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        assert_eq!(
            store.graph().stats().snapshot().recovery_frames_replayed,
            batches.len() as u64
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_covers_prefix_replay_covers_tail() {
        let dir = tmpdir("ckpt-tail");
        let batches = workload(12);
        let half = batches.len() / 2;
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches[..half]);
            let meta = store.checkpoint().unwrap();
            assert_eq!(meta.next_seq, half as u64);
            run(&mut store, &batches[half..]);
            store.sync().unwrap();
        }
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.checkpoint_loaded, Some(1));
        assert_eq!(report.frames_replayed, (batches.len() - half) as u64);
        assert_eq!(report.next_seq, batches.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_checkpoint_is_a_delta_and_recovery_walks_the_chain() {
        let dir = tmpdir("delta-chain");
        let opts = StoreOptions {
            delta_ratio: 1.0, // always small enough
            ..StoreOptions::default()
        };
        let batches = workload(12);
        let third = batches.len() / 3;
        {
            let (mut store, _) = Store::open_with(&dir, 64, cfg(), opts).unwrap();
            run(&mut store, &batches[..third]);
            store.checkpoint().unwrap();
            assert!(checkpoint_file(&dir, 1).exists(), "first image is full");
            run(&mut store, &batches[third..2 * third]);
            let meta = store.checkpoint().unwrap();
            assert_eq!(meta.id, 2);
            assert!(delta_file(&dir, 2).exists(), "second image is a delta");
            assert!(!checkpoint_file(&dir, 2).exists());
            let snap = store.graph().stats().snapshot();
            assert_eq!(snap.delta_checkpoints_written, 1);
            assert!(snap.checkpoint_dirty_vertices > 0);
            run(&mut store, &batches[2 * third..]);
            store.sync().unwrap();
        }
        let (store, report) = Store::open_with(&dir, 64, cfg(), opts).unwrap();
        assert_eq!(report.checkpoint_loaded, Some(2));
        assert_eq!(report.chain_len, 1);
        assert_eq!(report.images_discarded, 0);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_delta_chain_forces_a_full_image() {
        let dir = tmpdir("chain-cap");
        let opts = StoreOptions {
            delta_ratio: 1.0,
            max_delta_chain: 1,
            ..StoreOptions::default()
        };
        let batches = workload(9);
        let (mut store, _) = Store::open_with(&dir, 64, cfg(), opts).unwrap();
        run(&mut store, &batches[..3]);
        store.checkpoint().unwrap(); // full (cold chain)
        run(&mut store, &batches[3..6]);
        store.checkpoint().unwrap(); // delta (chain len 0 -> 1)
        run(&mut store, &batches[6..]);
        store.checkpoint().unwrap(); // forced full (chain at cap)
        assert!(checkpoint_file(&dir, 1).exists());
        assert!(delta_file(&dir, 2).exists());
        assert!(checkpoint_file(&dir, 3).exists(), "cap must force a full");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn large_dirty_ratio_forces_a_full_image() {
        let dir = tmpdir("ratio");
        let opts = StoreOptions {
            delta_ratio: 0.0, // nothing is ever "small"
            ..StoreOptions::default()
        };
        let batches = workload(6);
        let (mut store, _) = Store::open_with(&dir, 64, cfg(), opts).unwrap();
        run(&mut store, &batches[..3]);
        store.checkpoint().unwrap();
        run(&mut store, &batches[3..]);
        store.checkpoint().unwrap();
        assert!(checkpoint_file(&dir, 2).exists(), "ratio 0 forbids deltas");
        assert!(!delta_file(&dir, 2).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_and_retention_bound_the_wal() {
        let dir = tmpdir("retention");
        let opts = StoreOptions {
            segment_bytes: 512,
            delta_ratio: 1.0,
            ..StoreOptions::default()
        };
        let batches = workload(30);
        let (mut store, _) = Store::open_with(&dir, 64, cfg(), opts).unwrap();
        let mut shadowed = Vec::new();
        for chunk in batches.chunks(8) {
            run(&mut store, chunk);
            shadowed.extend(chunk.iter().cloned());
            store.checkpoint().unwrap();
            store.run_retention().unwrap();
        }
        let snap = store.graph().stats().snapshot();
        assert!(snap.wal_segments_rotated > 0, "512-byte budget must rotate");
        assert!(snap.wal_segments_deleted > 0, "retention must reclaim");
        // Bounded: live bytes never include segments below the newest
        // chain tip, so only the tail since the last checkpoint remains.
        let first_live = segment::list_segments(&dir).unwrap()[0];
        assert!(
            first_live >= store.wal_position().segment,
            "all sealed segments below the tip are gone"
        );
        assert_eq!(snap.wal_live_bytes, store.wal_len());
        drop(store);
        let (store, report) = Store::open_with(&dir, 64, cfg(), opts).unwrap();
        assert_eq!(report.frames_replayed, 0, "checkpoint covered everything");
        assert_eq!(report.images_discarded, 0);
        assert_matches_shadow(store.graph(), &shadow(&shadowed));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_folds_the_chain_in_place() {
        let dir = tmpdir("compact");
        let opts = StoreOptions {
            delta_ratio: 1.0,
            ..StoreOptions::default()
        };
        let batches = workload(12);
        let third = batches.len() / 3;
        let (mut store, _) = Store::open_with(&dir, 64, cfg(), opts).unwrap();
        run(&mut store, &batches[..third]);
        store.checkpoint().unwrap();
        run(&mut store, &batches[third..2 * third]);
        store.checkpoint().unwrap();
        assert!(delta_file(&dir, 2).exists());
        let meta = store.compact().unwrap().unwrap();
        assert_eq!(meta.id, 2);
        assert!(checkpoint_file(&dir, 2).exists());
        assert!(!delta_file(&dir, 2).exists());
        // The next checkpoint chains a delta off the compacted full.
        run(&mut store, &batches[2 * third..]);
        let meta = store.checkpoint().unwrap();
        assert_eq!(meta.id, 3);
        assert!(delta_file(&dir, 3).exists());
        store.sync().unwrap();
        drop(store);
        let (store, report) = Store::open_with(&dir, 64, cfg(), opts).unwrap();
        assert_eq!(report.checkpoint_loaded, Some(3));
        assert_eq!(report.chain_len, 1);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_wal_log_is_migrated_to_segment_zero() {
        let dir = tmpdir("legacy");
        let batches = workload(6);
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches);
            store.sync().unwrap();
        }
        // Rewind the layout to what an older build left behind.
        std::fs::rename(segment_file(&dir, 0), dir.join(WAL_FILE)).unwrap();
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert!(segment_file(&dir, 0).exists());
        assert!(!dir.join(WAL_FILE).exists());
        assert_eq!(report.frames_replayed, batches.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_checkpoint_write_overlaps_the_writer() {
        let dir = tmpdir("bg-ckpt");
        let batches = workload(12);
        let half = batches.len() / 2;
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches[..half]);
            // Freeze the checkpoint, then hand the image write to another
            // thread while this one keeps logging and applying batches.
            let pending = store.begin_checkpoint().unwrap();
            assert_eq!(pending.id(), 1);
            let writer = std::thread::spawn(move || pending.write().unwrap());
            run(&mut store, &batches[half..]);
            store.sync().unwrap();
            let meta = writer.join().expect("image writer panicked");
            assert_eq!(meta.id, 1);
            assert_eq!(meta.next_seq, half as u64);
            // Quiescence: the image write dropped the snapshot, so the
            // retired block versions it pinned are reclaimable.
            store.graph_mut().reclaim_epochs();
            assert_eq!(store.graph().epoch_backlog(), 0);
        }
        // Recovery: the image covers the first half; the WAL tail replays
        // the batches that landed while the image was being written.
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.checkpoint_loaded, Some(1));
        assert_eq!(report.frames_replayed, (batches.len() - half) as u64);
        assert_eq!(report.next_seq, batches.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_pending_checkpoint_leaves_an_id_gap_recovery_tolerates() {
        let dir = tmpdir("dropped-pending");
        let batches = workload(6);
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches[..3]);
            drop(store.begin_checkpoint().unwrap()); // id 1 claimed, never written
            run(&mut store, &batches[3..]);
            let meta = store.checkpoint().unwrap();
            assert_eq!(meta.id, 2, "synchronous checkpoint skips the claimed id");
            assert!(
                checkpoint_file(&dir, 2).exists(),
                "a claimed pending id closes the chain: next image is full"
            );
        }
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.checkpoint_loaded, Some(2));
        assert_eq!(report.frames_replayed, 0);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_reported() {
        let dir = tmpdir("torn");
        let batches = workload(8);
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches);
            store.sync().unwrap();
        }
        // Physically tear the last frame mid-payload.
        let wal_path = segment_file(&dir, 0);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.frames_replayed, batches.len() as u64 - 1);
        assert_eq!(report.frames_discarded, 1);
        assert!(report.bytes_discarded > 0);
        assert_eq!(
            store.graph().stats().snapshot().recovery_frames_discarded,
            1
        );
        // The torn bytes are physically gone and the store's state equals
        // a clean run of the surviving prefix.
        assert!(std::fs::metadata(&wal_path).unwrap().len() < bytes.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&batches[..batches.len() - 1]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_after_torn_truncation_appends_cleanly() {
        let dir = tmpdir("torn-resume");
        let batches = workload(6);
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches);
            store.sync().unwrap();
        }
        let wal_path = segment_file(&dir, 0);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 2]).unwrap();
        let tail = workload(3);
        let survivors = {
            let (mut store, report) = Store::open(&dir, 64, cfg()).unwrap();
            let survivors = report.frames_replayed as usize;
            run(&mut store, &tail);
            store.sync().unwrap();
            survivors
        };
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.frames_discarded, 0, "second recovery is clean");
        let mut expect: Vec<(WalOp, Vec<Edge>)> = batches[..survivors].to_vec();
        expect.extend(tail.iter().cloned());
        assert_eq!(report.frames_replayed, expect.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&expect));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsynced_buffered_frames_are_lost_not_torn() {
        let dir = tmpdir("unsynced");
        let batches = workload(4);
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches[..2]);
            store.sync().unwrap();
            // These stay in the group-commit buffer: never written.
            run(&mut store, &batches[2..]);
            assert!(store.wal_len() > 0);
        }
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(report.frames_discarded, 0, "a lost buffer is not a tear");
        assert_matches_shadow(store.graph(), &shadow(&batches[..2]));
        std::fs::remove_dir_all(&dir).ok();
    }
}
