//! The durable store: an [`LsGraph`] fronted by a WAL, with tier-aware
//! checkpoints and crash recovery.
//!
//! Write path: every batch is appended to the WAL **before**
//! [`LsGraph::try_insert_batch`] / [`try_delete_batch`] applies it
//! (write-ahead rule), so the log is always a superset of the in-memory
//! state up to group-commit buffering. [`Store::sync`] is the durability
//! point; [`Store::checkpoint`] syncs the log and freezes the full
//! hierarchical representation so the covered WAL prefix never needs
//! replaying again.
//!
//! Recovery ([`Store::open`]): load the newest valid checkpoint (or start
//! empty), scan the WAL tail it does not cover, replay cleanly-decoded
//! frames through the normal batch pipeline, and physically truncate the
//! log at the first torn or corrupt frame. The caller gets a
//! [`RecoveryReport`] and the stats counters
//! `recovery_frames_replayed` / `recovery_frames_discarded` are updated.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lsgraph_api::{fail_point, Edge, Graph};
use lsgraph_core::{BatchOutcome, Config, GraphError, GraphSnapshot, LsGraph};

use crate::checkpoint::{self, CheckpointMeta};
use crate::wal::{self, Wal, WalOp};

/// Name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// Errors from store operations: I/O from the durability layer, or a
/// structural error surfaced by the engine's fallible batch API.
#[derive(Debug)]
pub enum StoreError {
    /// The WAL, checkpoint, or manifest I/O failed.
    Io(io::Error),
    /// The engine rejected the operation.
    Graph(GraphError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Graph(e) => write!(f, "store graph error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}

/// What [`Store::open`] reconstructed and what it had to throw away.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Id of the checkpoint image loaded, if any.
    pub checkpoint_loaded: Option<u64>,
    /// WAL frames replayed through the batch pipeline.
    pub frames_replayed: u64,
    /// Truncation events in the WAL tail (1 if a torn/corrupt tail was cut).
    pub frames_discarded: u64,
    /// Bytes discarded from the torn tail.
    pub bytes_discarded: u64,
    /// Edges in the graph after recovery completed.
    pub edges_restored: u64,
    /// Sequence number the next logged batch will carry — equivalently, the
    /// number of batches (checkpointed + replayed) the recovered state holds.
    pub next_seq: u64,
}

/// A durable [`LsGraph`]: WAL + checkpoints + recovery in one directory.
pub struct Store {
    dir: PathBuf,
    graph: LsGraph,
    wal: Wal,
    next_checkpoint_id: u64,
}

impl Store {
    /// Opens the store at `dir` (created if missing), running recovery:
    /// newest valid checkpoint, then WAL-tail replay, then torn-tail
    /// truncation. `n` sizes a cold-start graph; an existing checkpoint's
    /// own vertex count wins (the graph grows lazily past either bound).
    ///
    /// # Errors
    ///
    /// I/O errors from the directory, WAL, or checkpoint files; a config
    /// rejected by the engine; or a replay failure from the batch pipeline.
    /// Individually corrupt checkpoint images are skipped, not errors.
    pub fn open(dir: &Path, n: usize, cfg: Config) -> Result<(Store, RecoveryReport), StoreError> {
        fs::create_dir_all(dir)?;
        let (mut graph, ckpt) = match checkpoint::load_newest_checkpoint(dir, cfg)? {
            Some((g, meta)) => (g, Some(meta)),
            None => (
                LsGraph::try_with_config(n, cfg).map_err(GraphError::InvalidConfig)?,
                None,
            ),
        };
        let (wal_offset, mut next_seq) = ckpt.map_or((0, 0), |m| (m.wal_offset, m.next_seq));
        let wal_path = dir.join(WAL_FILE);
        let scan = wal::scan(&wal_path, wal_offset, next_seq)?;
        let mut frames_replayed = 0u64;
        for frame in &scan.frames {
            fail_point!("recovery_replay");
            match frame.op {
                WalOp::Insert => graph.try_insert_batch(&frame.edges)?,
                WalOp::Delete => graph.try_delete_batch(&frame.edges)?,
            };
            graph.stats().record_recovery_frame_replayed();
            frames_replayed += 1;
        }
        graph
            .stats()
            .record_recovery_frames_discarded(scan.frames_discarded);
        next_seq += frames_replayed;
        let wal = Wal::open(&wal_path, scan.valid_len, next_seq)?;
        let report = RecoveryReport {
            checkpoint_loaded: ckpt.map(|m| m.id),
            frames_replayed,
            frames_discarded: scan.frames_discarded,
            bytes_discarded: scan.bytes_discarded,
            edges_restored: graph.num_edges() as u64,
            next_seq,
        };
        let store = Store {
            dir: dir.to_path_buf(),
            graph,
            wal,
            next_checkpoint_id: ckpt.map_or(1, |m| m.id + 1),
        };
        Ok((store, report))
    }

    /// Logs `batch` to the WAL, then inserts it. The frame is crash-durable
    /// only after the next [`Store::sync`] (group commit).
    ///
    /// # Errors
    ///
    /// WAL I/O errors (the batch is then *not* applied), or an engine error
    /// from the fallible batch pipeline.
    pub fn insert_batch(&mut self, batch: &[Edge]) -> Result<BatchOutcome, StoreError> {
        self.wal.append(WalOp::Insert, batch, self.graph.stats())?;
        Ok(self.graph.try_insert_batch(batch)?)
    }

    /// Logs `batch` to the WAL, then deletes it. Mirrors
    /// [`Store::insert_batch`].
    ///
    /// # Errors
    ///
    /// WAL I/O errors (the batch is then *not* applied), or an engine error
    /// from the fallible batch pipeline.
    pub fn delete_batch(&mut self, batch: &[Edge]) -> Result<BatchOutcome, StoreError> {
        self.wal.append(WalOp::Delete, batch, self.graph.stats())?;
        Ok(self.graph.try_delete_batch(batch)?)
    }

    /// Flushes and fsyncs the WAL — everything logged so far becomes
    /// crash-durable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the flush or fsync.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        Ok(self.wal.sync()?)
    }

    /// Syncs the WAL, then writes a checkpoint image covering the entire
    /// log so far. Recovery from this image replays nothing unless more
    /// batches land afterwards. The log itself is kept (it stays a full
    /// history); images carry the offset where replay must resume.
    ///
    /// # Errors
    ///
    /// Propagates WAL sync and image-write I/O errors; a failed image write
    /// never clobbers an older checkpoint.
    pub fn checkpoint(&mut self) -> Result<CheckpointMeta, StoreError> {
        self.wal.sync()?;
        let meta = checkpoint::write_checkpoint(
            &self.dir,
            self.next_checkpoint_id,
            &self.graph,
            self.wal.logical_len(),
            self.wal.next_seq(),
        )?;
        self.next_checkpoint_id = meta.id + 1;
        Ok(meta)
    }

    /// Syncs the WAL and freezes a checkpoint *without writing it*: the
    /// returned [`PendingCheckpoint`] captures a [`GraphSnapshot`] plus the
    /// WAL position it covers, and can be moved to another thread and
    /// written there while this store keeps logging and applying batches.
    /// Batches that land after this call are simply not covered by the
    /// image — recovery replays them from the WAL tail, exactly as with a
    /// synchronous [`Store::checkpoint`].
    ///
    /// The checkpoint id is claimed eagerly, so interleaved synchronous
    /// checkpoints never collide with a pending one. A pending checkpoint
    /// that is dropped unwritten leaves a gap in the id sequence, which
    /// recovery tolerates (it scans for the newest valid image).
    ///
    /// # Errors
    ///
    /// Propagates WAL sync I/O errors; the snapshot itself cannot fail.
    pub fn begin_checkpoint(&mut self) -> Result<PendingCheckpoint, StoreError> {
        self.wal.sync()?;
        let pending = PendingCheckpoint {
            dir: self.dir.clone(),
            id: self.next_checkpoint_id,
            snapshot: self.graph.snapshot(),
            wal_offset: self.wal.logical_len(),
            next_seq: self.wal.next_seq(),
        };
        self.next_checkpoint_id += 1;
        Ok(pending)
    }

    /// The recovered / live graph.
    pub fn graph(&self) -> &LsGraph {
        &self.graph
    }

    /// Mutable access for out-of-band surgery (e.g.
    /// [`LsGraph::repair_vertex`]). Such mutations bypass the WAL: they are
    /// durable only once a subsequent [`Store::checkpoint`] freezes them.
    pub fn graph_mut(&mut self) -> &mut LsGraph {
        &mut self.graph
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// WAL length in bytes including group-commit-buffered frames.
    pub fn wal_len(&self) -> u64 {
        self.wal.logical_len()
    }

    /// The sequence number the next logged batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }
}

/// A checkpoint frozen by [`Store::begin_checkpoint`] but not yet written.
///
/// Holds a [`GraphSnapshot`] of the flip point, so it is `Send` and the
/// image write ([`PendingCheckpoint::write`]) can run on a background
/// thread concurrently with the store's writer. The snapshot's block
/// versions stay alive (and count toward the epoch-reclamation backlog)
/// until the pending checkpoint is written or dropped.
pub struct PendingCheckpoint {
    dir: PathBuf,
    id: u64,
    snapshot: GraphSnapshot,
    wal_offset: u64,
    next_seq: u64,
}

impl PendingCheckpoint {
    /// The checkpoint id the image will carry.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// WAL byte offset the image covers; replay resumes here.
    pub fn wal_offset(&self) -> u64 {
        self.wal_offset
    }

    /// The frozen state the image will serialize.
    pub fn snapshot(&self) -> &GraphSnapshot {
        &self.snapshot
    }

    /// Serializes the frozen snapshot into its image and updates the
    /// manifest, consuming the pending checkpoint (and releasing the
    /// snapshot's hold on retired block versions).
    ///
    /// # Errors
    ///
    /// Propagates image-write I/O errors; a failed write never clobbers an
    /// older checkpoint.
    pub fn write(self) -> io::Result<CheckpointMeta> {
        checkpoint::write_checkpoint(
            &self.dir,
            self.id,
            &self.snapshot,
            self.wal_offset,
            self.next_seq,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsgraph-store-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    fn cfg() -> Config {
        Config {
            m: 256,
            ..Config::default()
        }
    }

    /// Deterministic mixed workload: `rounds` insert batches with a delete
    /// batch every third round.
    fn workload(rounds: u64) -> Vec<(WalOp, Vec<Edge>)> {
        let mut out = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for r in 0..rounds {
            let mut ins = Vec::new();
            for _ in 0..40 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let src = ((x >> 33) % 64) as u32;
                let dst = ((x >> 17) % 500) as u32;
                ins.push(Edge::new(src, dst));
            }
            out.push((WalOp::Insert, ins.clone()));
            if r % 3 == 2 {
                let del = ins.iter().step_by(4).copied().collect();
                out.push((WalOp::Delete, del));
            }
        }
        out
    }

    fn shadow(batches: &[(WalOp, Vec<Edge>)]) -> BTreeSet<(u32, u32)> {
        let mut s = BTreeSet::new();
        for (op, b) in batches {
            for e in b {
                match op {
                    WalOp::Insert => {
                        s.insert((e.src, e.dst));
                    }
                    WalOp::Delete => {
                        s.remove(&(e.src, e.dst));
                    }
                }
            }
        }
        s
    }

    fn assert_matches_shadow(g: &LsGraph, s: &BTreeSet<(u32, u32)>) {
        assert_eq!(g.num_edges(), s.len());
        for v in 0..g.num_vertices() as u32 {
            let want: Vec<u32> = s.range((v, 0)..=(v, u32::MAX)).map(|&(_, d)| d).collect();
            assert_eq!(g.neighbors(v), want, "vertex {v}");
        }
        g.check_invariants();
    }

    fn run(store: &mut Store, batches: &[(WalOp, Vec<Edge>)]) {
        for (op, b) in batches {
            match op {
                WalOp::Insert => store.insert_batch(b).unwrap(),
                WalOp::Delete => store.delete_batch(b).unwrap(),
            };
        }
    }

    #[test]
    fn cold_start_log_replay() {
        let dir = tmpdir("cold");
        let batches = workload(12);
        {
            let (mut store, report) = Store::open(&dir, 64, cfg()).unwrap();
            assert_eq!(report, RecoveryReport::default());
            run(&mut store, &batches);
            store.sync().unwrap();
        }
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.checkpoint_loaded, None);
        assert_eq!(report.frames_replayed, batches.len() as u64);
        assert_eq!(report.frames_discarded, 0);
        assert_eq!(report.next_seq, batches.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        assert_eq!(
            store.graph().stats().snapshot().recovery_frames_replayed,
            batches.len() as u64
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_covers_prefix_replay_covers_tail() {
        let dir = tmpdir("ckpt-tail");
        let batches = workload(12);
        let half = batches.len() / 2;
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches[..half]);
            let meta = store.checkpoint().unwrap();
            assert_eq!(meta.next_seq, half as u64);
            run(&mut store, &batches[half..]);
            store.sync().unwrap();
        }
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.checkpoint_loaded, Some(1));
        assert_eq!(report.frames_replayed, (batches.len() - half) as u64);
        assert_eq!(report.next_seq, batches.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn background_checkpoint_write_overlaps_the_writer() {
        let dir = tmpdir("bg-ckpt");
        let batches = workload(12);
        let half = batches.len() / 2;
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches[..half]);
            // Freeze the checkpoint, then hand the image write to another
            // thread while this one keeps logging and applying batches.
            let pending = store.begin_checkpoint().unwrap();
            assert_eq!(pending.id(), 1);
            let writer = std::thread::spawn(move || pending.write().unwrap());
            run(&mut store, &batches[half..]);
            store.sync().unwrap();
            let meta = writer.join().expect("image writer panicked");
            assert_eq!(meta.id, 1);
            assert_eq!(meta.next_seq, half as u64);
            // Quiescence: the image write dropped the snapshot, so the
            // retired block versions it pinned are reclaimable.
            store.graph_mut().reclaim_epochs();
            assert_eq!(store.graph().epoch_backlog(), 0);
        }
        // Recovery: the image covers the first half; the WAL tail replays
        // the batches that landed while the image was being written.
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.checkpoint_loaded, Some(1));
        assert_eq!(report.frames_replayed, (batches.len() - half) as u64);
        assert_eq!(report.next_seq, batches.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dropped_pending_checkpoint_leaves_an_id_gap_recovery_tolerates() {
        let dir = tmpdir("dropped-pending");
        let batches = workload(6);
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches[..3]);
            drop(store.begin_checkpoint().unwrap()); // id 1 claimed, never written
            run(&mut store, &batches[3..]);
            let meta = store.checkpoint().unwrap();
            assert_eq!(meta.id, 2, "synchronous checkpoint skips the claimed id");
        }
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.checkpoint_loaded, Some(2));
        assert_eq!(report.frames_replayed, 0);
        assert_matches_shadow(store.graph(), &shadow(&batches));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_reported() {
        let dir = tmpdir("torn");
        let batches = workload(8);
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches);
            store.sync().unwrap();
        }
        // Physically tear the last frame mid-payload.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.frames_replayed, batches.len() as u64 - 1);
        assert_eq!(report.frames_discarded, 1);
        assert!(report.bytes_discarded > 0);
        assert_eq!(
            store.graph().stats().snapshot().recovery_frames_discarded,
            1
        );
        // The torn bytes are physically gone and the store's state equals
        // a clean run of the surviving prefix.
        assert!(std::fs::metadata(&wal_path).unwrap().len() < bytes.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&batches[..batches.len() - 1]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_after_torn_truncation_appends_cleanly() {
        let dir = tmpdir("torn-resume");
        let batches = workload(6);
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches);
            store.sync().unwrap();
        }
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 2]).unwrap();
        let tail = workload(3);
        let survivors = {
            let (mut store, report) = Store::open(&dir, 64, cfg()).unwrap();
            let survivors = report.frames_replayed as usize;
            run(&mut store, &tail);
            store.sync().unwrap();
            survivors
        };
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.frames_discarded, 0, "second recovery is clean");
        let mut expect: Vec<(WalOp, Vec<Edge>)> = batches[..survivors].to_vec();
        expect.extend(tail.iter().cloned());
        assert_eq!(report.frames_replayed, expect.len() as u64);
        assert_matches_shadow(store.graph(), &shadow(&expect));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsynced_buffered_frames_are_lost_not_torn() {
        let dir = tmpdir("unsynced");
        let batches = workload(4);
        {
            let (mut store, _) = Store::open(&dir, 64, cfg()).unwrap();
            run(&mut store, &batches[..2]);
            store.sync().unwrap();
            // These stay in the group-commit buffer: never written.
            run(&mut store, &batches[2..]);
            assert!(store.wal_len() > 0);
        }
        let (store, report) = Store::open(&dir, 64, cfg()).unwrap();
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(report.frames_discarded, 0, "a lost buffer is not a tear");
        assert_matches_shadow(store.graph(), &shadow(&batches[..2]));
        std::fs::remove_dir_all(&dir).ok();
    }
}
