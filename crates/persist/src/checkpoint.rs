//! Tier-aware checkpoints: full images, dirty-vertex delta images, and the
//! recovery-chain loader that stitches them back together.
//!
//! A **full** checkpoint serializes every non-empty vertex through the
//! engine's tier-native walk ([`LsGraph::checkpoint_vertex`]): the inline
//! line, then the spill container traversed per tier — sorted array as a
//! slice, RIA block-by-block via its redundant index, HITree through its
//! iterator. Each record carries the vertex's tier tag, so images document
//! the hierarchy they froze even though restore rebuilds tiers
//! deterministically from degree.
//!
//! A **delta** checkpoint serializes only the vertices dirtied since the
//! previous image, plus the full quarantine set; its cost scales with the
//! write working set, not the graph. Deltas name their parent image and
//! only apply on top of exactly that state, so recovery validates the
//! chain link-by-link.
//!
//! On-disk layout of a full image (`checkpoint-<id>.img`): the magic
//! `LSGCKPT1`, then one [`binio`] frame (`u32 len | u32 CRC32 | body`), so
//! a torn or bit-flipped image fails closed exactly like a torn WAL frame.
//! The body is
//!
//! ```text
//! u64 α bits | u64 A | u64 M                  -- config fingerprint
//! u64 num_vertices | u64 num_edges
//! u64 wal_segment | u64 wal_offset | u64 next_seq  -- WAL position covered
//! u64 quarantined_count | ids…                -- re-quarantined on restore
//! u64 record_count
//! records: u32 id | u8 tier tag | u32 degree | neighbors…
//! ```
//!
//! A delta image (`checkpoint-<id>.dlt`) uses the magic `LSGCKPD1` and the
//! same frame shape; its body inserts `u64 parent_id` after the config
//! fingerprint, its records cover exactly the dirty vertices (including
//! ones dirtied down to degree 0), and its quarantine list *replaces* the
//! parent's wholesale. `num_vertices`/`num_edges` are the totals at the
//! freeze point, which lets recovery validate a delta arithmetically
//! before mutating anything.
//!
//! The frame's u32 length caps an image at 4 GiB, plenty for this engine's
//! in-memory scale. Images are written to a temp file, fsynced, and
//! renamed into place; the `MANIFEST` (same magic-plus-frame shape) is
//! updated after the image lands. The manifest is **advisory**: recovery
//! always derives the newest recoverable chain from a directory scan
//! ([`load_newest_chain`]), because a corrupt or stale manifest could name
//! a delta whose base image was already garbage-collected.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use lsgraph_api::{fail_point, Graph, StructStats};
use lsgraph_core::{Config, GraphSnapshot, LsGraph, Tier};
use lsgraph_gen::binio;

/// A graph state a checkpoint can serialize: the live [`LsGraph`] or a
/// [`GraphSnapshot`] frozen at a batch boundary. The snapshot impl is what
/// lets [`crate::Store::begin_checkpoint`] hand the image write to another
/// thread while the writer keeps applying batches — the image is a faithful
/// picture of the flip point no matter how far the live graph moves on.
pub trait CheckpointView: Graph {
    /// The engine configuration, fingerprinted into the image header.
    fn config(&self) -> &Config;
    /// Vertices quarantined at this state, re-quarantined on restore.
    fn quarantined_vertices(&self) -> Vec<u32>;
    /// Whether `v` is quarantined (degree 0 by invariant).
    fn is_quarantined(&self, v: u32) -> bool;
    /// Tier-native adjacency walk of `v` into `out`; returns the tier tag
    /// recorded alongside it.
    fn checkpoint_vertex(&self, v: u32, out: &mut Vec<u32>) -> Tier;
    /// Structural counters to record `checkpoint_bytes` into.
    fn stats(&self) -> &StructStats;
}

impl CheckpointView for LsGraph {
    fn config(&self) -> &Config {
        LsGraph::config(self)
    }
    fn quarantined_vertices(&self) -> Vec<u32> {
        LsGraph::quarantined_vertices(self)
    }
    fn is_quarantined(&self, v: u32) -> bool {
        LsGraph::is_quarantined(self, v)
    }
    fn checkpoint_vertex(&self, v: u32, out: &mut Vec<u32>) -> Tier {
        LsGraph::checkpoint_vertex(self, v, out)
    }
    fn stats(&self) -> &StructStats {
        LsGraph::stats(self)
    }
}

impl CheckpointView for GraphSnapshot {
    fn config(&self) -> &Config {
        GraphSnapshot::config(self)
    }
    fn quarantined_vertices(&self) -> Vec<u32> {
        GraphSnapshot::quarantined_vertices(self)
    }
    fn is_quarantined(&self, v: u32) -> bool {
        GraphSnapshot::is_quarantined(self, v)
    }
    fn checkpoint_vertex(&self, v: u32, out: &mut Vec<u32>) -> Tier {
        GraphSnapshot::checkpoint_vertex(self, v, out)
    }
    fn stats(&self) -> &StructStats {
        GraphSnapshot::stats(self)
    }
}

/// Magic header of a full checkpoint image.
const CKPT_MAGIC: &[u8; 8] = b"LSGCKPT1";

/// Magic header of a delta checkpoint image.
const DELTA_MAGIC: &[u8; 8] = b"LSGCKPD1";

/// Magic header of the manifest.
const MANIFEST_MAGIC: &[u8; 8] = b"LSGMANI1";

/// Name of the manifest file inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Identity and coverage of one checkpoint image (full or delta).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Monotonic checkpoint id (also in the file name).
    pub id: u64,
    /// WAL segment the image's replay position lives in.
    pub wal_segment: u64,
    /// Byte offset inside that segment; replay resumes here.
    pub wal_offset: u64,
    /// Sequence number the first replayed WAL frame must carry.
    pub next_seq: u64,
    /// Size of the image file in bytes.
    pub bytes: u64,
}

/// What [`load_newest_chain`] reconstructed (or failed to).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainInfo {
    /// Id of the full image the chain is rooted at (0 when no chain).
    pub base_id: u64,
    /// Id of the last applied image — the chain tip (equals `base_id` for
    /// a bare full image).
    pub tip_id: u64,
    /// Delta images applied on top of the base.
    pub chain_len: u64,
    /// Images that could not be used: corrupt fulls skipped on the way to
    /// a valid base, plus deltas past the first broken chain link (and
    /// every delta, if no full image is valid at all).
    pub images_discarded: u64,
}

/// File name of full checkpoint `id` (zero-padded so lexical order =
/// numeric).
pub fn checkpoint_file(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("checkpoint-{id:016}.img"))
}

/// File name of delta checkpoint `id`.
pub fn delta_file(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("checkpoint-{id:016}.dlt"))
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Serializes `g` into full checkpoint image `id` under `dir` and updates
/// the manifest. Quarantined vertices contribute their id to the
/// quarantine list but never an adjacency record (they are degree 0 by
/// invariant). Records `checkpoint_bytes` into the graph's stats.
///
/// `g` is any [`CheckpointView`] — the live graph, or a frozen
/// [`GraphSnapshot`] when the image is written off-thread.
///
/// # Errors
///
/// Propagates I/O errors; the image is written to a temp file and renamed,
/// so a failed write never clobbers an older checkpoint.
pub fn write_checkpoint<V: CheckpointView + ?Sized>(
    dir: &Path,
    id: u64,
    g: &V,
    wal_segment: u64,
    wal_offset: u64,
    next_seq: u64,
) -> io::Result<CheckpointMeta> {
    fail_point!("checkpoint_write");
    let cfg = g.config();
    let mut body = Vec::with_capacity(72 + g.num_edges() * 4);
    body.extend_from_slice(&cfg.alpha.to_bits().to_le_bytes());
    body.extend_from_slice(&(cfg.a as u64).to_le_bytes());
    body.extend_from_slice(&(cfg.m as u64).to_le_bytes());
    body.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    body.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
    body.extend_from_slice(&wal_segment.to_le_bytes());
    body.extend_from_slice(&wal_offset.to_le_bytes());
    body.extend_from_slice(&next_seq.to_le_bytes());
    let quarantined = g.quarantined_vertices();
    body.extend_from_slice(&(quarantined.len() as u64).to_le_bytes());
    for &q in &quarantined {
        body.extend_from_slice(&q.to_le_bytes());
    }
    let record_count_at = body.len();
    body.extend_from_slice(&0u64.to_le_bytes());
    let mut records = 0u64;
    let mut ns = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        ns.clear();
        let tier = g.checkpoint_vertex(v, &mut ns);
        if ns.is_empty() {
            continue;
        }
        debug_assert!(
            !g.is_quarantined(v),
            "quarantined vertex {v} has a non-empty adjacency"
        );
        body.extend_from_slice(&v.to_le_bytes());
        body.push(tier.tag());
        body.extend_from_slice(&(ns.len() as u32).to_le_bytes());
        for &u in &ns {
            body.extend_from_slice(&u.to_le_bytes());
        }
        records += 1;
    }
    body[record_count_at..record_count_at + 8].copy_from_slice(&records.to_le_bytes());

    let path = checkpoint_file(dir, id);
    let bytes = write_image(&path, CKPT_MAGIC, &body)?;
    g.stats().record_checkpoint_bytes(bytes);
    let meta = CheckpointMeta {
        id,
        wal_segment,
        wal_offset,
        next_seq,
        bytes,
    };
    write_manifest(dir, meta)?;
    Ok(meta)
}

/// Serializes a **delta** image `id` under `dir`: the adjacency of exactly
/// the vertices in `dirty` (ascending, deduplicated — a drained dirty set)
/// as they stand in `g`, the full quarantine set, and `parent_id`, the
/// image this delta applies on top of. Updates the manifest and records
/// `checkpoint_bytes`.
///
/// Dirty vertices whose adjacency shrank to degree 0 are recorded with an
/// empty neighbor list — recovery must clear them, so omitting them would
/// corrupt the chain.
///
/// # Errors
///
/// Propagates I/O errors; temp-file-plus-rename, so a failed write never
/// clobbers anything.
#[allow(clippy::too_many_arguments)]
pub fn write_delta_checkpoint<V: CheckpointView + ?Sized>(
    dir: &Path,
    id: u64,
    parent_id: u64,
    g: &V,
    dirty: &[u32],
    wal_segment: u64,
    wal_offset: u64,
    next_seq: u64,
) -> io::Result<CheckpointMeta> {
    fail_point!("delta_checkpoint");
    debug_assert!(
        dirty.windows(2).all(|w| w[0] < w[1]),
        "dirty set not sorted"
    );
    let cfg = g.config();
    let mut body = Vec::with_capacity(96 + dirty.len() * 16);
    body.extend_from_slice(&cfg.alpha.to_bits().to_le_bytes());
    body.extend_from_slice(&(cfg.a as u64).to_le_bytes());
    body.extend_from_slice(&(cfg.m as u64).to_le_bytes());
    body.extend_from_slice(&parent_id.to_le_bytes());
    body.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    body.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
    body.extend_from_slice(&wal_segment.to_le_bytes());
    body.extend_from_slice(&wal_offset.to_le_bytes());
    body.extend_from_slice(&next_seq.to_le_bytes());
    let quarantined = g.quarantined_vertices();
    body.extend_from_slice(&(quarantined.len() as u64).to_le_bytes());
    for &q in &quarantined {
        body.extend_from_slice(&q.to_le_bytes());
    }
    body.extend_from_slice(&(dirty.len() as u64).to_le_bytes());
    let mut ns = Vec::new();
    for &v in dirty {
        ns.clear();
        let tier = g.checkpoint_vertex(v, &mut ns);
        body.extend_from_slice(&v.to_le_bytes());
        body.push(tier.tag());
        body.extend_from_slice(&(ns.len() as u32).to_le_bytes());
        for &u in &ns {
            body.extend_from_slice(&u.to_le_bytes());
        }
    }

    let path = delta_file(dir, id);
    let bytes = write_image(&path, DELTA_MAGIC, &body)?;
    g.stats().record_checkpoint_bytes(bytes);
    let meta = CheckpointMeta {
        id,
        wal_segment,
        wal_offset,
        next_seq,
        bytes,
    };
    write_manifest(dir, meta)?;
    Ok(meta)
}

/// Magic + frame + fsync + rename; returns the file's size.
fn write_image(path: &Path, magic: &[u8; 8], body: &[u8]) -> io::Result<u64> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(magic)?;
        binio::write_frame(&mut f, body)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    Ok(fs::metadata(path)?.len())
}

/// Reads an image file, validates its magic, and returns the CRC-checked
/// frame body.
fn read_image_body(path: &Path, magic: &[u8; 8]) -> io::Result<Vec<u8>> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let disp = path.display();
    if raw.len() < magic.len() || &raw[..magic.len()] != magic {
        return Err(invalid(format!(
            "{disp}: not an {} image",
            String::from_utf8_lossy(magic)
        )));
    }
    let (body, consumed) = binio::parse_frame(&raw[magic.len()..])
        .ok_or_else(|| invalid(format!("{disp}: torn or corrupt checkpoint frame")))?;
    if magic.len() + consumed != raw.len() {
        return Err(invalid(format!("{disp}: trailing bytes after image frame")));
    }
    Ok(body.to_vec())
}

fn check_config(cur: &mut Cursor<'_>, cfg: Config, disp: &dyn std::fmt::Display) -> io::Result<()> {
    let alpha_bits = cur.u64(disp)?;
    let a = cur.u64(disp)?;
    let m = cur.u64(disp)?;
    if alpha_bits != cfg.alpha.to_bits() || a != cfg.a as u64 || m != cfg.m as u64 {
        return Err(invalid(format!(
            "{disp}: image config (α={}, A={a}, M={m}) does not match engine config \
             (α={}, A={}, M={})",
            f64::from_bits(alpha_bits),
            cfg.alpha,
            cfg.a,
            cfg.m
        )));
    }
    Ok(())
}

/// Parses and restores the full checkpoint image at `path`, rebuilding the
/// graph under `cfg` (whose α/A/M must match the image's fingerprint).
///
/// # Errors
///
/// `InvalidData` for a bad magic, torn frame, config mismatch, or any
/// structural inconsistency; other I/O errors propagate.
pub fn load_checkpoint(path: &Path, cfg: Config) -> io::Result<(LsGraph, CheckpointMeta)> {
    let body = read_image_body(path, CKPT_MAGIC)?;
    let disp = path.display();
    let mut cur = Cursor {
        body: &body,
        pos: 0,
    };
    check_config(&mut cur, cfg, &disp)?;
    let num_vertices = cur.u64(&disp)? as usize;
    let num_edges = cur.u64(&disp)? as usize;
    let wal_segment = cur.u64(&disp)?;
    let wal_offset = cur.u64(&disp)?;
    let next_seq = cur.u64(&disp)?;
    let n_quarantined = cur.u64(&disp)? as usize;
    let mut quarantined = Vec::with_capacity(n_quarantined.min(1 << 20));
    for _ in 0..n_quarantined {
        quarantined.push(cur.u32(&disp)?);
    }
    let records = cur.u64(&disp)?;

    let mut g =
        LsGraph::try_with_config(num_vertices, cfg).map_err(|e| invalid(format!("{disp}: {e}")))?;
    let mut ns = Vec::new();
    for _ in 0..records {
        let v = cur.u32(&disp)?;
        let tag = cur.u8(&disp)?;
        if Tier::from_tag(tag).is_none() {
            return Err(invalid(format!("{disp}: unknown tier tag {tag}")));
        }
        let degree = cur.u32(&disp)? as usize;
        ns.clear();
        ns.reserve(degree);
        for _ in 0..degree {
            ns.push(cur.u32(&disp)?);
        }
        if !ns.windows(2).all(|w| w[0] < w[1]) {
            return Err(invalid(format!(
                "{disp}: vertex {v} adjacency not ascending"
            )));
        }
        g.restore_vertex_from_sorted(v, &ns);
    }
    if cur.pos != body.len() {
        return Err(invalid(format!("{disp}: unread bytes after last record")));
    }
    if g.num_edges() != num_edges {
        return Err(invalid(format!(
            "{disp}: restored {} edges but the image claims {num_edges}",
            g.num_edges()
        )));
    }
    for &q in &quarantined {
        g.restore_quarantine(q)
            .map_err(|e| invalid(format!("{disp}: {e}")))?;
    }
    let bytes = fs::metadata(path)?.len();
    let id = image_id_from_path(path).unwrap_or(0);
    Ok((
        g,
        CheckpointMeta {
            id,
            wal_segment,
            wal_offset,
            next_seq,
            bytes,
        },
    ))
}

/// Validates the delta image at `path` against `g` and — only if every
/// check passes — applies it, replacing the adjacency of each recorded
/// vertex and swapping in the delta's quarantine set wholesale.
///
/// Validation is strictly **before** mutation: the whole body is parsed,
/// the parent id must equal `expect_parent` (the id of the image `g`
/// currently reflects), records must be ascending with sorted adjacency,
/// and the edge total predicted from `g`'s current degrees must equal the
/// total the image claims. A delta that fails any check leaves `g`
/// untouched, so the chain loader can fall back to a shorter chain.
///
/// # Errors
///
/// `InvalidData` on any validation failure (with `g` unmodified); other
/// I/O errors propagate.
pub fn apply_delta_checkpoint(
    path: &Path,
    g: &mut LsGraph,
    expect_parent: u64,
) -> io::Result<CheckpointMeta> {
    let body = read_image_body(path, DELTA_MAGIC)?;
    let disp = path.display();
    let mut cur = Cursor {
        body: &body,
        pos: 0,
    };
    check_config(&mut cur, *LsGraph::config(g), &disp)?;
    let parent_id = cur.u64(&disp)?;
    if parent_id != expect_parent {
        return Err(invalid(format!(
            "{disp}: delta parent {parent_id} does not match the applied chain tip \
             {expect_parent}"
        )));
    }
    let num_vertices = cur.u64(&disp)? as usize;
    let num_edges = cur.u64(&disp)? as usize;
    let wal_segment = cur.u64(&disp)?;
    let wal_offset = cur.u64(&disp)?;
    let next_seq = cur.u64(&disp)?;
    let n_quarantined = cur.u64(&disp)? as usize;
    let mut quarantined = Vec::with_capacity(n_quarantined.min(1 << 20));
    for _ in 0..n_quarantined {
        quarantined.push(cur.u32(&disp)?);
    }
    let n_records = cur.u64(&disp)? as usize;
    let mut records: Vec<(u32, Vec<u32>)> = Vec::with_capacity(n_records.min(1 << 20));
    for _ in 0..n_records {
        let v = cur.u32(&disp)?;
        if v as usize >= num_vertices {
            return Err(invalid(format!(
                "{disp}: record vertex {v} out of range ({num_vertices} vertices)"
            )));
        }
        if let Some(&(prev, _)) = records.last() {
            if v <= prev {
                return Err(invalid(format!("{disp}: delta records not ascending")));
            }
        }
        let tag = cur.u8(&disp)?;
        if Tier::from_tag(tag).is_none() {
            return Err(invalid(format!("{disp}: unknown tier tag {tag}")));
        }
        let degree = cur.u32(&disp)? as usize;
        let mut ns = Vec::with_capacity(degree.min(1 << 20));
        for _ in 0..degree {
            ns.push(cur.u32(&disp)?);
        }
        if !ns.windows(2).all(|w| w[0] < w[1]) {
            return Err(invalid(format!(
                "{disp}: vertex {v} adjacency not ascending"
            )));
        }
        records.push((v, ns));
    }
    if cur.pos != body.len() {
        return Err(invalid(format!("{disp}: unread bytes after last record")));
    }
    // Arithmetic pre-check: replacing each recorded vertex's adjacency
    // must land exactly on the edge total the image claims. This catches
    // a delta applied to the wrong parent state even when ids line up.
    let mut predicted = g.num_edges();
    for (v, ns) in &records {
        // Records may name vertices beyond the parent image's count (the
        // graph grew between checkpoints); those contribute no prior edges.
        if (*v as usize) < g.num_vertices() {
            predicted -= g.neighbors(*v).len();
        }
        predicted += ns.len();
    }
    if predicted != num_edges {
        return Err(invalid(format!(
            "{disp}: applying this delta would yield {predicted} edges but the image \
             claims {num_edges}"
        )));
    }
    // Point of no return: every mutation below is infallible.
    for (v, ns) in &records {
        g.restore_vertex_from_sorted(*v, ns);
    }
    for &q in &quarantined {
        if (q as usize) >= g.num_vertices() {
            g.restore_vertex_from_sorted(q, &[]);
        }
    }
    g.restore_quarantine_set(&quarantined)
        .map_err(|e| invalid(format!("{disp}: {e}")))?;
    debug_assert_eq!(g.num_edges(), num_edges);
    let bytes = fs::metadata(path)?.len();
    let id = image_id_from_path(path).unwrap_or(0);
    Ok(CheckpointMeta {
        id,
        wal_segment,
        wal_offset,
        next_seq,
        bytes,
    })
}

/// Little-endian cursor over a checkpoint body.
struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn slice(&mut self, n: usize, disp: &dyn std::fmt::Display) -> io::Result<&[u8]> {
        let s = self
            .body
            .get(self.pos..self.pos + n)
            .ok_or_else(|| invalid(format!("{disp}: image body truncated")))?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, disp: &dyn std::fmt::Display) -> io::Result<u8> {
        Ok(self.slice(1, disp)?[0])
    }

    fn u32(&mut self, disp: &dyn std::fmt::Display) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.slice(4, disp)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self, disp: &dyn std::fmt::Display) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.slice(8, disp)?.try_into().expect("8-byte slice"),
        ))
    }
}

/// Extracts the id from a `checkpoint-<id>.img` or `.dlt` file name.
fn image_id_from_path(path: &Path) -> Option<u64> {
    let stem = path.file_name()?.to_str()?.strip_prefix("checkpoint-")?;
    stem.strip_suffix(".img")
        .or_else(|| stem.strip_suffix(".dlt"))?
        .parse()
        .ok()
}

fn full_id_from_path(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("checkpoint-")?
        .strip_suffix(".img")?
        .parse()
        .ok()
}

fn delta_id_from_path(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("checkpoint-")?
        .strip_suffix(".dlt")?
        .parse()
        .ok()
}

/// Writes the manifest naming checkpoint `meta` (temp file + rename).
fn write_manifest(dir: &Path, meta: CheckpointMeta) -> io::Result<()> {
    let mut body = Vec::with_capacity(32);
    body.extend_from_slice(&meta.id.to_le_bytes());
    body.extend_from_slice(&meta.wal_segment.to_le_bytes());
    body.extend_from_slice(&meta.wal_offset.to_le_bytes());
    body.extend_from_slice(&meta.next_seq.to_le_bytes());
    let path = dir.join(MANIFEST_FILE);
    let tmp = dir.join("MANIFEST.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(MANIFEST_MAGIC)?;
        binio::write_frame(&mut f, &body)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)
}

/// Reads the manifest's image id; `Ok(None)` if it is missing or fails
/// validation.
///
/// The manifest is **advisory** — a breadcrumb for tooling naming the
/// newest image written. Recovery never trusts it: a corrupt or stale
/// manifest could name a delta whose base image retention GC already
/// deleted, so [`load_newest_chain`] always derives the chain from the
/// directory itself.
pub fn read_manifest(dir: &Path) -> io::Result<Option<u64>> {
    let mut raw = Vec::new();
    match File::open(dir.join(MANIFEST_FILE)) {
        Ok(mut f) => f.read_to_end(&mut raw).map(|_| ())?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    if raw.len() < MANIFEST_MAGIC.len() || &raw[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Ok(None);
    }
    let Some((body, _)) = binio::parse_frame(&raw[MANIFEST_MAGIC.len()..]) else {
        return Ok(None);
    };
    if body.len() != 32 {
        return Ok(None);
    }
    Ok(Some(u64::from_le_bytes(
        body[0..8].try_into().expect("8-byte slice"),
    )))
}

/// Loads the newest **recoverable chain** under `dir`: the highest-id full
/// image that validates, plus every delta above it that links and applies
/// cleanly (each delta's parent must be the previously applied image, in
/// ascending id order). Returns the restored graph, the chain *tip*'s
/// meta (whose WAL position is where replay resumes), and a [`ChainInfo`]
/// accounting for what was discarded.
///
/// Degradation is graceful and strictly prefix-preserving: a corrupt or
/// mislinked delta ends the chain there (later deltas are discarded, the
/// prefix stands); a corrupt full image falls back to the next older full
/// and *its* delta chain. When a full and a delta share an id — the
/// compaction crash window — the full wins: deltas only apply with ids
/// strictly above the base and each applied predecessor.
///
/// `Ok((None, info))` when no valid full image exists (cold start, or
/// everything is corrupt — `info` still counts the casualties).
///
/// # Errors
///
/// Propagates directory-scan I/O errors; individually corrupt images are
/// skipped and counted, not errors.
pub fn load_newest_chain(
    dir: &Path,
    cfg: Config,
) -> io::Result<(Option<(LsGraph, CheckpointMeta)>, ChainInfo)> {
    let mut fulls: Vec<u64> = Vec::new();
    let mut deltas: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(id) = full_id_from_path(&path) {
            fulls.push(id);
        } else if let Some(id) = delta_id_from_path(&path) {
            deltas.push(id);
        }
    }
    fulls.sort_unstable_by(|x, y| y.cmp(x));
    deltas.sort_unstable();

    let mut info = ChainInfo::default();
    for &fid in &fulls {
        let (mut g, mut meta) = match load_checkpoint(&checkpoint_file(dir, fid), cfg) {
            Ok(loaded) => loaded,
            Err(_) => {
                info.images_discarded += 1;
                continue;
            }
        };
        info.base_id = fid;
        let mut tip = fid;
        let mut broken = false;
        for &did in deltas.iter().filter(|&&d| d > fid) {
            if broken {
                info.images_discarded += 1;
                continue;
            }
            match apply_delta_checkpoint(&delta_file(dir, did), &mut g, tip) {
                Ok(dmeta) => {
                    tip = did;
                    info.chain_len += 1;
                    meta = dmeta;
                }
                Err(_) => {
                    broken = true;
                    info.images_discarded += 1;
                }
            }
        }
        info.tip_id = tip;
        return Ok((Some((g, meta)), info));
    }
    // No usable base: every delta is unrecoverable too.
    info.images_discarded += deltas.len() as u64;
    Ok((None, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::{DynamicGraph, Edge};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsgraph-ckpt-{}-{name}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn skewed_graph(cfg: Config) -> LsGraph {
        let mut g = LsGraph::with_config(400, cfg);
        let mut batch = Vec::new();
        // Vertex 0 deep into the HITree tier, 1 in RIA, 2 in array, 3 inline.
        batch.extend((0..900u32).map(|i| Edge::new(0, i + 1)));
        batch.extend((0..80u32).map(|i| Edge::new(1, 2 * i + 1)));
        batch.extend((0..20u32).map(|i| Edge::new(2, 3 * i + 2)));
        batch.extend((0..5u32).map(|i| Edge::new(3, i + 7)));
        g.insert_batch(&batch);
        g
    }

    fn small_cfg() -> Config {
        Config {
            m: 256,
            ..Config::default()
        }
    }

    fn assert_same_graph(a: &LsGraph, b: &LsGraph) {
        assert_eq!(a.num_edges(), b.num_edges());
        for v in 0..a.num_vertices().max(b.num_vertices()) as u32 {
            assert_eq!(a.neighbors(v), b.neighbors(v), "vertex {v}");
        }
    }

    #[test]
    fn checkpoint_roundtrip_every_tier() {
        let dir = tmpdir("roundtrip");
        let g = skewed_graph(small_cfg());
        let meta = write_checkpoint(&dir, 1, &g, 2, 123, 9).unwrap();
        assert_eq!(meta.wal_segment, 2);
        assert_eq!(meta.wal_offset, 123);
        assert_eq!(meta.next_seq, 9);
        assert_eq!(g.stats().snapshot().checkpoint_bytes, meta.bytes);
        let (r, rmeta) = load_checkpoint(&checkpoint_file(&dir, 1), small_cfg()).unwrap();
        assert_eq!(rmeta, meta);
        assert_same_graph(&r, &g);
        assert_eq!(r.num_vertices(), g.num_vertices());
        r.check_invariants();
        assert_eq!(read_manifest(&dir).unwrap(), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The compressed cold tier's record tag must survive both image kinds:
    /// a frozen vertex checkpoints as tag 5 with its plain ascending
    /// adjacency, and restoring under a compress-enabled config re-derives
    /// the frozen tier deterministically from `degree > M`. The tag is
    /// descriptive, not prescriptive: a compression-disabled engine restores
    /// the same contents on the writable ladder.
    #[test]
    fn checkpoint_roundtrip_compressed_tier() {
        let dir = tmpdir("compressed");
        let cold = Config {
            compress_cold: true,
            ..small_cfg()
        };
        let mut g = skewed_graph(cold);
        // Only vertex 0 (degree 900 > M = 256) is cold enough to freeze.
        assert_eq!(g.compress_cold_vertices(), 1);
        assert_eq!(g.tier(0), Tier::Compressed);
        let meta = write_checkpoint(&dir, 1, &g, 0, 0, 1).unwrap();
        let (r, rmeta) = load_checkpoint(&checkpoint_file(&dir, 1), cold).unwrap();
        assert_eq!(rmeta, meta);
        assert_same_graph(&r, &g);
        assert_eq!(r.tier(0), Tier::Compressed);
        r.check_invariants();
        let (w, _) = load_checkpoint(&checkpoint_file(&dir, 1), small_cfg()).unwrap();
        assert_same_graph(&w, &g);
        assert_eq!(w.tier(0), Tier::HiTree);

        // Delta images carry the tag too: thaw vertex 0 with a write,
        // re-freeze, and replay the chain.
        g.clear_dirty();
        g.delete_batch(&(0..40u32).map(|i| Edge::new(0, i + 1)).collect::<Vec<_>>());
        assert_eq!(g.tier(0), Tier::HiTree, "the delete thawed the vertex");
        assert_eq!(g.compress_cold_vertices(), 1);
        let dirty = g.take_dirty_vertices();
        assert!(dirty.contains(&0));
        write_delta_checkpoint(&dir, 2, 1, &g, &dirty, 0, 10, 2).unwrap();
        let (restored, info) = load_newest_chain(&dir, cold).unwrap();
        let (d, _) = restored.unwrap();
        assert_eq!(info.tip_id, 2);
        assert_same_graph(&d, &g);
        assert_eq!(d.tier(0), Tier::Compressed);
        d.check_invariants();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_roundtrip_applies_only_dirty_vertices() {
        let dir = tmpdir("delta");
        let mut g = skewed_graph(small_cfg());
        write_checkpoint(&dir, 1, &g, 0, 10, 1).unwrap();
        g.clear_dirty();
        // Mutate a few vertices: grow one, shrink one to zero, add one.
        g.insert_batch(
            &(0..30u32)
                .map(|i| Edge::new(7, 5 * i + 1))
                .collect::<Vec<_>>(),
        );
        g.delete_batch(&(0..5u32).map(|i| Edge::new(3, i + 7)).collect::<Vec<_>>());
        let dirty = g.dirty_vertices();
        assert!(dirty.contains(&7) && dirty.contains(&3));
        let meta = write_delta_checkpoint(&dir, 2, 1, &g, &dirty, 0, 20, 2).unwrap();
        assert!(
            meta.bytes < fs::metadata(checkpoint_file(&dir, 1)).unwrap().len(),
            "delta must be smaller than the full image"
        );
        let (restored, info) = load_newest_chain(&dir, small_cfg()).unwrap();
        let (r, rmeta) = restored.unwrap();
        assert_eq!(rmeta, meta);
        assert_eq!(info.base_id, 1);
        assert_eq!(info.tip_id, 2);
        assert_eq!(info.chain_len, 1);
        assert_eq!(info.images_discarded, 0);
        assert_same_graph(&r, &g);
        assert_eq!(
            r.neighbors(3),
            Vec::<u32>::new(),
            "shrunk-to-zero vertex cleared"
        );
        r.check_invariants();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_middle_delta_degrades_to_the_chain_prefix() {
        let dir = tmpdir("midcorrupt");
        let mut g = skewed_graph(small_cfg());
        write_checkpoint(&dir, 1, &g, 0, 10, 1).unwrap();
        g.clear_dirty();
        let mut states = Vec::new();
        for (id, seed) in [(2u64, 100u32), (3, 200), (4, 300)] {
            g.insert_batch(
                &(0..20u32)
                    .map(|i| Edge::new(seed % 50, seed + i))
                    .collect::<Vec<_>>(),
            );
            let dirty = g.take_dirty_vertices();
            write_delta_checkpoint(&dir, id, id - 1, &g, &dirty, 0, id * 10, id).unwrap();
            states.push(g.num_edges());
        }
        // Corrupt delta 3: the chain must degrade to full-1 + delta-2 and
        // discard deltas 3 and 4.
        let p3 = delta_file(&dir, 3);
        let mut bytes = fs::read(&p3).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&p3, &bytes).unwrap();
        let (restored, info) = load_newest_chain(&dir, small_cfg()).unwrap();
        let (r, rmeta) = restored.unwrap();
        assert_eq!(info.base_id, 1);
        assert_eq!(info.tip_id, 2);
        assert_eq!(info.chain_len, 1);
        assert_eq!(
            info.images_discarded, 2,
            "delta 3 (corrupt) and delta 4 (orphaned)"
        );
        assert_eq!(rmeta.id, 2);
        assert_eq!(rmeta.wal_offset, 20, "replay resumes at the surviving tip");
        assert_eq!(r.num_edges(), states[0]);
        r.check_invariants();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mislinked_delta_is_rejected_without_mutation() {
        let dir = tmpdir("mislink");
        let mut g = skewed_graph(small_cfg());
        write_checkpoint(&dir, 1, &g, 0, 10, 1).unwrap();
        g.clear_dirty();
        g.insert_batch(&[Edge::new(9, 1), Edge::new(9, 2)]);
        let dirty = g.take_dirty_vertices();
        // Parent claims 7, but the chain tip is 1.
        write_delta_checkpoint(&dir, 2, 7, &g, &dirty, 0, 20, 2).unwrap();
        let (mut base, _) = load_checkpoint(&checkpoint_file(&dir, 1), small_cfg()).unwrap();
        let edges_before = base.num_edges();
        let err = apply_delta_checkpoint(&delta_file(&dir, 2), &mut base, 1).unwrap_err();
        assert!(err.to_string().contains("parent"), "{err}");
        assert_eq!(
            base.num_edges(),
            edges_before,
            "failed apply must not mutate"
        );
        // The chain loader treats it the same way: bare full image.
        let (restored, info) = load_newest_chain(&dir, small_cfg()).unwrap();
        assert_eq!(restored.unwrap().1.id, 1);
        assert_eq!(info.images_discarded, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_image_wins_over_delta_at_the_same_id() {
        // The compaction crash window leaves both checkpoint-N.img and
        // checkpoint-N.dlt; the full must be chosen as base and the delta
        // ignored (not discarded — it is merely superseded).
        let dir = tmpdir("samewins");
        let mut g = skewed_graph(small_cfg());
        write_checkpoint(&dir, 1, &g, 0, 10, 1).unwrap();
        g.clear_dirty();
        g.insert_batch(&[Edge::new(11, 3), Edge::new(11, 9)]);
        let dirty = g.dirty_vertices();
        write_delta_checkpoint(&dir, 2, 1, &g, &dirty, 0, 20, 2).unwrap();
        // Compaction folded the chain into a full at id 2 but crashed
        // before deleting the delta.
        write_checkpoint(&dir, 2, &g, 0, 20, 2).unwrap();
        let (restored, info) = load_newest_chain(&dir, small_cfg()).unwrap();
        let (r, rmeta) = restored.unwrap();
        assert_eq!(info.base_id, 2);
        assert_eq!(info.tip_id, 2);
        assert_eq!(info.chain_len, 0);
        assert_eq!(info.images_discarded, 0);
        assert_eq!(rmeta.id, 2);
        assert_same_graph(&r, &g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_base_falls_back_to_the_older_chain() {
        let dir = tmpdir("corrupt");
        let g = skewed_graph(small_cfg());
        write_checkpoint(&dir, 1, &g, 0, 10, 1).unwrap();
        write_checkpoint(&dir, 2, &g, 0, 20, 2).unwrap();
        // Corrupt image 2 (the newest): flip a payload byte.
        let p2 = checkpoint_file(&dir, 2);
        let mut bytes = std::fs::read(&p2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&p2, &bytes).unwrap();
        assert!(load_checkpoint(&p2, small_cfg()).is_err());
        // Recovery falls back to the newest *valid* image and counts the
        // casualty.
        let (restored, info) = load_newest_chain(&dir, small_cfg()).unwrap();
        let (_, meta) = restored.unwrap();
        assert_eq!(meta.id, 1);
        assert_eq!(meta.wal_offset, 10);
        assert_eq!(info.images_discarded, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_never_selects_a_delta_without_its_base() {
        // A stale/corrupt manifest naming a delta whose base is gone must
        // not influence recovery: the directory scan is the only truth.
        let dir = tmpdir("badmanifest");
        let mut g = skewed_graph(small_cfg());
        write_checkpoint(&dir, 1, &g, 0, 10, 1).unwrap();
        g.clear_dirty();
        g.insert_batch(&[Edge::new(13, 1)]);
        let dirty = g.dirty_vertices();
        write_delta_checkpoint(&dir, 5, 4, &g, &dirty, 0, 20, 2).unwrap();
        // The manifest now names delta 5, whose parent (4) never existed —
        // exactly the shape a crashed GC + stale manifest could leave.
        assert_eq!(read_manifest(&dir).unwrap(), Some(5));
        let (restored, info) = load_newest_chain(&dir, small_cfg()).unwrap();
        let (r, meta) = restored.unwrap();
        assert_eq!(meta.id, 1, "orphan delta must not be selected");
        assert_eq!(info.images_discarded, 1);
        assert_eq!(r.neighbors(13), Vec::<u32>::new());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_checkpoint_freezes_the_flip_point() {
        let dir = tmpdir("snap-ckpt");
        let mut g = skewed_graph(small_cfg());
        let snap = g.snapshot();
        let frozen_edges = g.num_edges();
        // The live graph moves on before the image is written; the image
        // must serialize the flip point, not the current state.
        g.insert_batch(&(0..300u32).map(|i| Edge::new(5, i + 1)).collect::<Vec<_>>());
        assert_ne!(g.num_edges(), frozen_edges);
        let meta = write_checkpoint(&dir, 1, &snap, 0, 77, 3).unwrap();
        let (r, rmeta) = load_checkpoint(&checkpoint_file(&dir, 1), small_cfg()).unwrap();
        assert_eq!(rmeta, meta);
        assert_eq!(r.num_edges(), frozen_edges);
        for v in 0..r.num_vertices() as u32 {
            assert_eq!(r.neighbors(v), snap.neighbors(v), "vertex {v}");
        }
        assert_eq!(
            r.neighbors(5),
            Vec::<u32>::new(),
            "post-flip batch excluded"
        );
        r.check_invariants();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let dir = tmpdir("cfgmismatch");
        let g = skewed_graph(small_cfg());
        write_checkpoint(&dir, 1, &g, 0, 0, 0).unwrap();
        let other = Config {
            m: 512,
            ..Config::default()
        };
        let err = match load_checkpoint(&checkpoint_file(&dir, 1), other) {
            Err(e) => e,
            Ok(_) => panic!("config mismatch must be rejected"),
        };
        assert!(err.to_string().contains("does not match"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_loads_nothing() {
        let dir = tmpdir("empty");
        let (restored, info) = load_newest_chain(&dir, Config::default()).unwrap();
        assert!(restored.is_none());
        assert_eq!(info, ChainInfo::default());
        std::fs::remove_dir_all(&dir).ok();
    }
}
