//! Tier-aware checkpoints: a versioned binary image of the hierarchical
//! representation plus a manifest naming the newest image.
//!
//! A checkpoint serializes every non-empty vertex through the engine's
//! tier-native walk ([`LsGraph::checkpoint_vertex`]): the inline line, then
//! the spill container traversed per tier — sorted array as a slice, RIA
//! block-by-block via its redundant index, HITree through its iterator.
//! Each record carries the vertex's tier tag, so images document the
//! hierarchy they froze even though restore rebuilds tiers deterministically
//! from degree.
//!
//! On-disk layout: the magic `LSGCKPT1`, then one [`binio`] frame
//! (`u32 len | u32 CRC32 | body`), so a torn or bit-flipped image fails
//! closed exactly like a torn WAL frame. The body is
//!
//! ```text
//! u64 α bits | u64 A | u64 M                  -- config fingerprint
//! u64 num_vertices | u64 num_edges
//! u64 wal_offset | u64 next_seq               -- WAL position it covers
//! u64 quarantined_count | ids…                -- re-quarantined on restore
//! u64 record_count
//! records: u32 id | u8 tier tag | u32 degree | neighbors…
//! ```
//!
//! The frame's u32 length caps an image at 4 GiB, plenty for this engine's
//! in-memory scale. Images are written to a temp file, fsynced, and renamed
//! into place; the `MANIFEST` (same magic-plus-frame shape) is updated after
//! the image lands, and recovery falls back to scanning for the newest valid
//! image if the manifest itself is lost.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use lsgraph_api::{fail_point, Graph, StructStats};
use lsgraph_core::{Config, GraphSnapshot, LsGraph, Tier};
use lsgraph_gen::binio;

/// A graph state a checkpoint can serialize: the live [`LsGraph`] or a
/// [`GraphSnapshot`] frozen at a batch boundary. The snapshot impl is what
/// lets [`crate::Store::begin_checkpoint`] hand the image write to another
/// thread while the writer keeps applying batches — the image is a faithful
/// picture of the flip point no matter how far the live graph moves on.
pub trait CheckpointView: Graph {
    /// The engine configuration, fingerprinted into the image header.
    fn config(&self) -> &Config;
    /// Vertices quarantined at this state, re-quarantined on restore.
    fn quarantined_vertices(&self) -> Vec<u32>;
    /// Whether `v` is quarantined (degree 0 by invariant).
    fn is_quarantined(&self, v: u32) -> bool;
    /// Tier-native adjacency walk of `v` into `out`; returns the tier tag
    /// recorded alongside it.
    fn checkpoint_vertex(&self, v: u32, out: &mut Vec<u32>) -> Tier;
    /// Structural counters to record `checkpoint_bytes` into.
    fn stats(&self) -> &StructStats;
}

impl CheckpointView for LsGraph {
    fn config(&self) -> &Config {
        LsGraph::config(self)
    }
    fn quarantined_vertices(&self) -> Vec<u32> {
        LsGraph::quarantined_vertices(self)
    }
    fn is_quarantined(&self, v: u32) -> bool {
        LsGraph::is_quarantined(self, v)
    }
    fn checkpoint_vertex(&self, v: u32, out: &mut Vec<u32>) -> Tier {
        LsGraph::checkpoint_vertex(self, v, out)
    }
    fn stats(&self) -> &StructStats {
        LsGraph::stats(self)
    }
}

impl CheckpointView for GraphSnapshot {
    fn config(&self) -> &Config {
        GraphSnapshot::config(self)
    }
    fn quarantined_vertices(&self) -> Vec<u32> {
        GraphSnapshot::quarantined_vertices(self)
    }
    fn is_quarantined(&self, v: u32) -> bool {
        GraphSnapshot::is_quarantined(self, v)
    }
    fn checkpoint_vertex(&self, v: u32, out: &mut Vec<u32>) -> Tier {
        GraphSnapshot::checkpoint_vertex(self, v, out)
    }
    fn stats(&self) -> &StructStats {
        GraphSnapshot::stats(self)
    }
}

/// Magic header of a checkpoint image.
const CKPT_MAGIC: &[u8; 8] = b"LSGCKPT1";

/// Magic header of the manifest.
const MANIFEST_MAGIC: &[u8; 8] = b"LSGMANI1";

/// Name of the manifest file inside a store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Identity and coverage of one checkpoint image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Monotonic checkpoint id (also in the file name).
    pub id: u64,
    /// WAL byte offset the image covers; replay resumes here.
    pub wal_offset: u64,
    /// Sequence number the first replayed WAL frame must carry.
    pub next_seq: u64,
    /// Size of the image file in bytes.
    pub bytes: u64,
}

/// File name of checkpoint `id` (zero-padded so lexical order = numeric).
pub fn checkpoint_file(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("checkpoint-{id:016}.img"))
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Serializes `g` into checkpoint image `id` under `dir` and updates the
/// manifest. Quarantined vertices contribute their id to the quarantine
/// list but never an adjacency record (they are degree 0 by invariant).
/// Records `checkpoint_bytes` into the graph's stats.
///
/// `g` is any [`CheckpointView`] — the live graph, or a frozen
/// [`GraphSnapshot`] when the image is written off-thread.
///
/// # Errors
///
/// Propagates I/O errors; the image is written to a temp file and renamed,
/// so a failed write never clobbers an older checkpoint.
pub fn write_checkpoint<V: CheckpointView + ?Sized>(
    dir: &Path,
    id: u64,
    g: &V,
    wal_offset: u64,
    next_seq: u64,
) -> io::Result<CheckpointMeta> {
    fail_point!("checkpoint_write");
    let cfg = g.config();
    let mut body = Vec::with_capacity(64 + g.num_edges() * 4);
    body.extend_from_slice(&cfg.alpha.to_bits().to_le_bytes());
    body.extend_from_slice(&(cfg.a as u64).to_le_bytes());
    body.extend_from_slice(&(cfg.m as u64).to_le_bytes());
    body.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
    body.extend_from_slice(&(g.num_edges() as u64).to_le_bytes());
    body.extend_from_slice(&wal_offset.to_le_bytes());
    body.extend_from_slice(&next_seq.to_le_bytes());
    let quarantined = g.quarantined_vertices();
    body.extend_from_slice(&(quarantined.len() as u64).to_le_bytes());
    for &q in &quarantined {
        body.extend_from_slice(&q.to_le_bytes());
    }
    let record_count_at = body.len();
    body.extend_from_slice(&0u64.to_le_bytes());
    let mut records = 0u64;
    let mut ns = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        ns.clear();
        let tier = g.checkpoint_vertex(v, &mut ns);
        if ns.is_empty() {
            continue;
        }
        debug_assert!(
            !g.is_quarantined(v),
            "quarantined vertex {v} has a non-empty adjacency"
        );
        body.extend_from_slice(&v.to_le_bytes());
        body.push(tier.tag());
        body.extend_from_slice(&(ns.len() as u32).to_le_bytes());
        for &u in &ns {
            body.extend_from_slice(&u.to_le_bytes());
        }
        records += 1;
    }
    body[record_count_at..record_count_at + 8].copy_from_slice(&records.to_le_bytes());

    let path = checkpoint_file(dir, id);
    let tmp = path.with_extension("img.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(CKPT_MAGIC)?;
        binio::write_frame(&mut f, &body)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)?;
    let bytes = fs::metadata(&path)?.len();
    g.stats().record_checkpoint_bytes(bytes);
    let meta = CheckpointMeta {
        id,
        wal_offset,
        next_seq,
        bytes,
    };
    write_manifest(dir, meta)?;
    Ok(meta)
}

/// Parses and restores the checkpoint image at `path`, rebuilding the graph
/// under `cfg` (whose α/A/M must match the image's fingerprint).
///
/// # Errors
///
/// `InvalidData` for a bad magic, torn frame, config mismatch, or any
/// structural inconsistency; other I/O errors propagate.
pub fn load_checkpoint(path: &Path, cfg: Config) -> io::Result<(LsGraph, CheckpointMeta)> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    let disp = path.display();
    if raw.len() < CKPT_MAGIC.len() || &raw[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return Err(invalid(format!("{disp}: not an LSGCKPT1 image")));
    }
    let (body, consumed) = binio::parse_frame(&raw[CKPT_MAGIC.len()..])
        .ok_or_else(|| invalid(format!("{disp}: torn or corrupt checkpoint frame")))?;
    if CKPT_MAGIC.len() + consumed != raw.len() {
        return Err(invalid(format!("{disp}: trailing bytes after image frame")));
    }

    let mut cur = Cursor { body, pos: 0 };
    let alpha_bits = cur.u64(&disp)?;
    let a = cur.u64(&disp)?;
    let m = cur.u64(&disp)?;
    if alpha_bits != cfg.alpha.to_bits() || a != cfg.a as u64 || m != cfg.m as u64 {
        return Err(invalid(format!(
            "{disp}: image config (α={}, A={a}, M={m}) does not match engine config \
             (α={}, A={}, M={})",
            f64::from_bits(alpha_bits),
            cfg.alpha,
            cfg.a,
            cfg.m
        )));
    }
    let num_vertices = cur.u64(&disp)? as usize;
    let num_edges = cur.u64(&disp)? as usize;
    let wal_offset = cur.u64(&disp)?;
    let next_seq = cur.u64(&disp)?;
    let n_quarantined = cur.u64(&disp)? as usize;
    let mut quarantined = Vec::with_capacity(n_quarantined.min(1 << 20));
    for _ in 0..n_quarantined {
        quarantined.push(cur.u32(&disp)?);
    }
    let records = cur.u64(&disp)?;

    let mut g =
        LsGraph::try_with_config(num_vertices, cfg).map_err(|e| invalid(format!("{disp}: {e}")))?;
    let mut ns = Vec::new();
    for _ in 0..records {
        let v = cur.u32(&disp)?;
        let tag = cur.u8(&disp)?;
        if Tier::from_tag(tag).is_none() {
            return Err(invalid(format!("{disp}: unknown tier tag {tag}")));
        }
        let degree = cur.u32(&disp)? as usize;
        ns.clear();
        ns.reserve(degree);
        for _ in 0..degree {
            ns.push(cur.u32(&disp)?);
        }
        if !ns.windows(2).all(|w| w[0] < w[1]) {
            return Err(invalid(format!(
                "{disp}: vertex {v} adjacency not ascending"
            )));
        }
        g.restore_vertex_from_sorted(v, &ns);
    }
    if cur.pos != body.len() {
        return Err(invalid(format!("{disp}: unread bytes after last record")));
    }
    if g.num_edges() != num_edges {
        return Err(invalid(format!(
            "{disp}: restored {} edges but the image claims {num_edges}",
            g.num_edges()
        )));
    }
    for &q in &quarantined {
        g.restore_quarantine(q)
            .map_err(|e| invalid(format!("{disp}: {e}")))?;
    }
    let bytes = raw.len() as u64;
    let id = checkpoint_id_from_path(path).unwrap_or(0);
    Ok((
        g,
        CheckpointMeta {
            id,
            wal_offset,
            next_seq,
            bytes,
        },
    ))
}

/// Little-endian cursor over a checkpoint body.
struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn slice(&mut self, n: usize, disp: &dyn std::fmt::Display) -> io::Result<&[u8]> {
        let s = self
            .body
            .get(self.pos..self.pos + n)
            .ok_or_else(|| invalid(format!("{disp}: image body truncated")))?;
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, disp: &dyn std::fmt::Display) -> io::Result<u8> {
        Ok(self.slice(1, disp)?[0])
    }

    fn u32(&mut self, disp: &dyn std::fmt::Display) -> io::Result<u32> {
        Ok(u32::from_le_bytes(
            self.slice(4, disp)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self, disp: &dyn std::fmt::Display) -> io::Result<u64> {
        Ok(u64::from_le_bytes(
            self.slice(8, disp)?.try_into().expect("8-byte slice"),
        ))
    }
}

/// Extracts the id from a `checkpoint-<id>.img` file name.
fn checkpoint_id_from_path(path: &Path) -> Option<u64> {
    path.file_name()?
        .to_str()?
        .strip_prefix("checkpoint-")?
        .strip_suffix(".img")?
        .parse()
        .ok()
}

/// Writes the manifest naming checkpoint `meta` (temp file + rename).
fn write_manifest(dir: &Path, meta: CheckpointMeta) -> io::Result<()> {
    let mut body = Vec::with_capacity(24);
    body.extend_from_slice(&meta.id.to_le_bytes());
    body.extend_from_slice(&meta.wal_offset.to_le_bytes());
    body.extend_from_slice(&meta.next_seq.to_le_bytes());
    let path = dir.join(MANIFEST_FILE);
    let tmp = dir.join("MANIFEST.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(MANIFEST_MAGIC)?;
        binio::write_frame(&mut f, &body)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &path)
}

/// Reads the manifest; `Ok(None)` if it is missing or fails validation
/// (recovery then falls back to a directory scan).
fn read_manifest(dir: &Path) -> io::Result<Option<u64>> {
    let mut raw = Vec::new();
    match File::open(dir.join(MANIFEST_FILE)) {
        Ok(mut f) => f.read_to_end(&mut raw).map(|_| ())?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    if raw.len() < MANIFEST_MAGIC.len() || &raw[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Ok(None);
    }
    let Some((body, _)) = binio::parse_frame(&raw[MANIFEST_MAGIC.len()..]) else {
        return Ok(None);
    };
    if body.len() != 24 {
        return Ok(None);
    }
    Ok(Some(u64::from_le_bytes(
        body[0..8].try_into().expect("8-byte slice"),
    )))
}

/// Loads the newest valid checkpoint under `dir`: the manifest's image if it
/// validates, else the highest-id image that does. `Ok(None)` when no valid
/// image exists (cold start, or every image is corrupt).
///
/// # Errors
///
/// Propagates directory-scan I/O errors; individually corrupt images are
/// skipped, not errors.
pub fn load_newest_checkpoint(
    dir: &Path,
    cfg: Config,
) -> io::Result<Option<(LsGraph, CheckpointMeta)>> {
    if let Some(id) = read_manifest(dir)? {
        if let Ok(loaded) = load_checkpoint(&checkpoint_file(dir, id), cfg) {
            return Ok(Some(loaded));
        }
    }
    let mut ids: Vec<u64> = fs::read_dir(dir)?
        .filter_map(|e| checkpoint_id_from_path(&e.ok()?.path()))
        .collect();
    ids.sort_unstable_by(|x, y| y.cmp(x));
    for id in ids {
        if let Ok(loaded) = load_checkpoint(&checkpoint_file(dir, id), cfg) {
            return Ok(Some(loaded));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::{DynamicGraph, Edge};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lsgraph-ckpt-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn skewed_graph(cfg: Config) -> LsGraph {
        let mut g = LsGraph::with_config(400, cfg);
        let mut batch = Vec::new();
        // Vertex 0 deep into the HITree tier, 1 in RIA, 2 in array, 3 inline.
        batch.extend((0..900u32).map(|i| Edge::new(0, i + 1)));
        batch.extend((0..80u32).map(|i| Edge::new(1, 2 * i + 1)));
        batch.extend((0..20u32).map(|i| Edge::new(2, 3 * i + 2)));
        batch.extend((0..5u32).map(|i| Edge::new(3, i + 7)));
        g.insert_batch(&batch);
        g
    }

    fn small_cfg() -> Config {
        Config {
            m: 256,
            ..Config::default()
        }
    }

    #[test]
    fn checkpoint_roundtrip_every_tier() {
        let dir = tmpdir("roundtrip");
        let g = skewed_graph(small_cfg());
        let meta = write_checkpoint(&dir, 1, &g, 123, 9).unwrap();
        assert_eq!(meta.wal_offset, 123);
        assert_eq!(meta.next_seq, 9);
        assert_eq!(g.stats().snapshot().checkpoint_bytes, meta.bytes);
        let (r, rmeta) = load_checkpoint(&checkpoint_file(&dir, 1), small_cfg()).unwrap();
        assert_eq!(rmeta, meta);
        assert_eq!(r.num_edges(), g.num_edges());
        assert_eq!(r.num_vertices(), g.num_vertices());
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(r.neighbors(v), g.neighbors(v), "vertex {v}");
        }
        r.check_invariants();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_image_fails_closed_and_scan_falls_back() {
        let dir = tmpdir("corrupt");
        let g = skewed_graph(small_cfg());
        write_checkpoint(&dir, 1, &g, 10, 1).unwrap();
        write_checkpoint(&dir, 2, &g, 20, 2).unwrap();
        // Corrupt image 2 (the manifest's pick): flip a payload byte.
        let p2 = checkpoint_file(&dir, 2);
        let mut bytes = std::fs::read(&p2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&p2, &bytes).unwrap();
        assert!(load_checkpoint(&p2, small_cfg()).is_err());
        // Recovery falls back to the newest *valid* image.
        let (_, meta) = load_newest_checkpoint(&dir, small_cfg()).unwrap().unwrap();
        assert_eq!(meta.id, 1);
        assert_eq!(meta.wal_offset, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_checkpoint_freezes_the_flip_point() {
        let dir = tmpdir("snap-ckpt");
        let mut g = skewed_graph(small_cfg());
        let snap = g.snapshot();
        let frozen_edges = g.num_edges();
        // The live graph moves on before the image is written; the image
        // must serialize the flip point, not the current state.
        g.insert_batch(&(0..300u32).map(|i| Edge::new(5, i + 1)).collect::<Vec<_>>());
        assert_ne!(g.num_edges(), frozen_edges);
        let meta = write_checkpoint(&dir, 1, &snap, 77, 3).unwrap();
        let (r, rmeta) = load_checkpoint(&checkpoint_file(&dir, 1), small_cfg()).unwrap();
        assert_eq!(rmeta, meta);
        assert_eq!(r.num_edges(), frozen_edges);
        for v in 0..r.num_vertices() as u32 {
            assert_eq!(r.neighbors(v), snap.neighbors(v), "vertex {v}");
        }
        assert_eq!(
            r.neighbors(5),
            Vec::<u32>::new(),
            "post-flip batch excluded"
        );
        r.check_invariants();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_mismatch_is_rejected() {
        let dir = tmpdir("cfgmismatch");
        let g = skewed_graph(small_cfg());
        write_checkpoint(&dir, 1, &g, 0, 0).unwrap();
        let other = Config {
            m: 512,
            ..Config::default()
        };
        let err = match load_checkpoint(&checkpoint_file(&dir, 1), other) {
            Err(e) => e,
            Ok(_) => panic!("config mismatch must be rejected"),
        };
        assert!(err.to_string().contains("does not match"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_loads_nothing() {
        let dir = tmpdir("empty");
        assert!(load_newest_checkpoint(&dir, Config::default())
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
