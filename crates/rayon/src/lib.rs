//! Offline stand-in for the subset of rayon this workspace uses.
//!
//! The build environment has no network access and no cached registry, so the
//! real `rayon` crate cannot be fetched. This shim reproduces the API surface
//! the workspace actually calls — `par_iter`/`into_par_iter` adapter chains,
//! `par_iter_mut().enumerate().for_each`, `par_sort_unstable`, and
//! `ThreadPoolBuilder`/`ThreadPool::install` — with *real* parallelism built
//! on `std::thread::scope`.
//!
//! Semantics match rayon where it matters for this codebase:
//! - adapter chains are order-preserving (`map`/`filter`/`enumerate`/`collect`
//!   produce the same sequence as the sequential iterator would),
//! - `fold(identity, f)` yields one accumulator per worker chunk,
//! - `for_each`/`map` closures run concurrently on multiple OS threads, so
//!   shared-state bugs (and relaxed-atomic counter behaviour) are exercised
//!   for real,
//! - `ThreadPool::install` bounds the number of worker threads used by
//!   parallel calls made inside the closure.
//!
//! Differences from rayon: work is split eagerly into `num_threads` chunks
//! (no work stealing), threads are spawned per call rather than pooled, and
//! `par_sort_unstable` requires `T: Clone + Sync` on top of rayon's
//! `T: Ord` (its merge rounds go through a scratch buffer of clones; the
//! hot callers in this workspace sort `u64` keys, where clone is a copy).

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Inputs shorter than this run sequentially: spawning OS threads costs more
/// than the work they would do.
const MIN_PAR_LEN: usize = 32;

/// 0 = no override (use available parallelism).
static OVERRIDE_THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Number of worker threads parallel calls should use right now.
pub fn current_num_threads() -> usize {
    let o = OVERRIDE_THREADS.load(Ordering::Relaxed);
    if o != 0 {
        o
    } else {
        default_threads()
    }
}

/// Split `items` into at most `parts` contiguous chunks of near-equal size,
/// preserving order.
fn split_vec<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let len = items.len();
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out: Vec<Vec<T>> = Vec::with_capacity(parts);
    for i in (1..parts).rev() {
        let size = base + usize::from(i < extra);
        let at = items.len() - size;
        out.push(items.split_off(at));
    }
    out.push(items);
    out.reverse();
    out
}

/// Run `f` over each chunk on its own scoped thread; results keep chunk order.
fn run_chunked<T, U, F>(chunks: Vec<Vec<T>>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(Vec<T>) -> U + Sync,
{
    let fref = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || fref(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

fn pmap<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() < MIN_PAR_LEN {
        return items.into_iter().map(f).collect();
    }
    let chunks = split_vec(items, threads);
    let per_chunk = run_chunked(chunks, |chunk| {
        chunk.into_iter().map(&f).collect::<Vec<U>>()
    });
    per_chunk.into_iter().flatten().collect()
}

/// An eager "parallel iterator": adapters evaluate immediately (in parallel
/// where profitable) and hand the materialized sequence to the next stage.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Sync + Send,
    {
        ParIter {
            items: pmap(self.items, f),
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Sync + Send,
    {
        let kept = pmap(self.items, |x| if f(&x) { Some(x) } else { None });
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    pub fn filter_map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> Option<U> + Sync + Send,
    {
        let kept = pmap(self.items, f);
        ParIter {
            items: kept.into_iter().flatten().collect(),
        }
    }

    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync + Send,
    {
        let nested = pmap(self.items, |x| f(x).into_iter().collect::<Vec<U>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// One accumulator per worker chunk, like rayon's `fold`.
    pub fn fold<Acc, ID, F>(self, identity: ID, f: F) -> ParIter<Acc>
    where
        Acc: Send,
        ID: Fn() -> Acc + Sync + Send,
        F: Fn(Acc, T) -> Acc + Sync + Send,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.items.len() < MIN_PAR_LEN {
            let acc = self.items.into_iter().fold(identity(), &f);
            return ParIter { items: vec![acc] };
        }
        let chunks = split_vec(self.items, threads);
        let accs = run_chunked(chunks, |chunk| chunk.into_iter().fold(identity(), &f));
        ParIter { items: accs }
    }

    pub fn reduce<ID, F>(self, identity: ID, op: F) -> T
    where
        ID: Fn() -> T + Sync + Send,
        F: Fn(T, T) -> T + Sync + Send,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync + Send,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.items.len() < MIN_PAR_LEN {
            self.items.into_iter().for_each(f);
            return;
        }
        let chunks = split_vec(self.items, threads);
        run_chunked(chunks, |chunk| chunk.into_iter().for_each(&f));
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }

    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().max()
    }

    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }
}

/// Mutable parallel iterator over a slice (`par_iter_mut()`).
pub struct ParIterMut<'a, T: Send> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    pub fn enumerate(self) -> ParIterMutEnumerate<'a, T> {
        ParIterMutEnumerate { items: self.items }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync + Send,
    {
        ParIterMutEnumerate { items: self.items }.for_each(|(_, x)| f(x));
    }
}

pub struct ParIterMutEnumerate<'a, T: Send> {
    items: &'a mut [T],
}

impl<T: Send> ParIterMutEnumerate<'_, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut T)) + Sync + Send,
    {
        let threads = current_num_threads();
        let len = self.items.len();
        if threads <= 1 || len < MIN_PAR_LEN {
            for (i, x) in self.items.iter_mut().enumerate() {
                f((i, x));
            }
            return;
        }
        let chunk = len.div_ceil(threads);
        let fref = &f;
        std::thread::scope(|s| {
            for (ci, c) in self.items.chunks_mut(chunk).enumerate() {
                s.spawn(move || {
                    for (j, x) in c.iter_mut().enumerate() {
                        fref((ci * chunk + j, x));
                    }
                });
            }
        });
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<Idx> IntoParallelIterator for Range<Idx>
where
    Range<Idx>: Iterator<Item = Idx>,
    Idx: Send,
{
    type Item = Idx;
    fn into_par_iter(self) -> ParIter<Idx> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `slice.par_iter()` / `vec.par_iter()` (via autoderef).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Inputs shorter than this sort sequentially: the scratch allocation and
/// thread spawns only pay for themselves on sizeable slices.
const PAR_SORT_MIN_LEN: usize = 1 << 12;

/// Hints the CPU to pull the cache line holding `p` toward L1. The merge
/// streams two runs linearly, so a few-iterations-ahead hint hides the DRAM
/// latency of the next line. This crate cannot depend on `lsgraph-core`'s
/// `search::prefetch_read` (dependency direction), so the hint lives here.
#[inline(always)]
fn prefetch_hint<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags));
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

/// How far ahead of the merge cursors to issue prefetch hints, in elements.
const MERGE_PREFETCH_DIST: usize = 16;

/// Merges adjacent sorted runs of `width` from `src` into `dst` (same
/// length), one scoped thread per run pair — pair outputs are disjoint.
fn merge_round<T: Ord + Clone + Send + Sync>(src: &[T], width: usize, dst: &mut [T]) {
    std::thread::scope(|s| {
        for (sc, dc) in src.chunks(2 * width).zip(dst.chunks_mut(2 * width)) {
            s.spawn(move || {
                let mid = width.min(sc.len());
                merge_pair(&sc[..mid], &sc[mid..], dc);
            });
        }
    });
}

/// Classic two-way merge of sorted `a` and `b` into `out`
/// (`out.len() == a.len() + b.len()`), with prefetch hints ahead of both
/// run cursors.
fn merge_pair<T: Ord + Clone>(a: &[T], b: &[T], out: &mut [T]) {
    let (mut i, mut j) = (0, 0);
    for o in out.iter_mut() {
        if let Some(ahead) = a.get(i + MERGE_PREFETCH_DIST) {
            prefetch_hint(ahead);
        }
        if let Some(ahead) = b.get(j + MERGE_PREFETCH_DIST) {
            prefetch_hint(ahead);
        }
        *o = if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            i += 1;
            a[i - 1].clone()
        } else {
            j += 1;
            b[j - 1].clone()
        };
    }
}

/// `slice.par_iter_mut()` and `slice.par_sort_unstable()`.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    /// Parallel merge sort: near-equal chunks `sort_unstable` on scoped
    /// threads, then pairwise merge rounds ping-pong between the slice and
    /// a scratch buffer. Bounded by [`ThreadPool::install`] like every other
    /// parallel call.
    ///
    /// Deviation from rayon's bound (`T: Ord`): the merge rounds clone
    /// through a scratch buffer and share the source slice across scoped
    /// threads, so `T: Clone + Sync` is also required here.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Clone + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { items: self }
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Clone + Sync,
    {
        let threads = current_num_threads();
        let len = self.len();
        if threads <= 1 || len < PAR_SORT_MIN_LEN {
            self.sort_unstable();
            return;
        }
        // Phase 1: sort `threads` near-equal chunks concurrently.
        let chunk = len.div_ceil(threads);
        std::thread::scope(|s| {
            for c in self.chunks_mut(chunk) {
                s.spawn(move || c.sort_unstable());
            }
        });
        // Phase 2: merge rounds, doubling run width, alternating direction
        // between the slice and the scratch buffer.
        let mut scratch: Vec<T> = self.to_vec();
        let mut in_self = true;
        let mut width = chunk;
        while width < len {
            if in_self {
                merge_round(self, width, &mut scratch);
            } else {
                merge_round(&scratch, width, self);
            }
            in_self = !in_self;
            width *= 2;
        }
        if !in_self {
            self.clone_from_slice(&scratch);
        }
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A "pool" in this shim is just a bound on worker-thread fan-out, applied
/// for the duration of `install`.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = OVERRIDE_THREADS.swap(self.num_threads, Ordering::SeqCst);
        let r = f();
        OVERRIDE_THREADS.store(prev, Ordering::SeqCst);
        r
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParIterMut, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn range_into_par_iter_filter_count() {
        let n = (0u32..5_000)
            .into_par_iter()
            .filter(|&x| x % 3 == 0)
            .count();
        assert_eq!(n, (0u32..5_000).filter(|&x| x % 3 == 0).count());
    }

    #[test]
    fn fold_reduce_matches_sequential_sum() {
        let v: Vec<u64> = (1..=10_000).collect();
        let total = v
            .par_iter()
            .fold(|| 0u64, |acc, &x| acc + x)
            .reduce(|| 0u64, |a, b| a + b);
        assert_eq!(total, (1..=10_000u64).sum::<u64>());
    }

    #[test]
    fn for_each_runs_every_item_once() {
        let hits = AtomicU64::new(0);
        let v: Vec<u32> = (0..4_096).collect();
        v.par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4_096);
    }

    #[test]
    fn par_iter_mut_enumerate_writes_indices() {
        let mut v = vec![0usize; 3_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i * 7);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 7);
        }
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let out: Vec<u32> = (0u32..100)
            .into_par_iter()
            .flat_map_iter(|c| (0..3).map(move |k| c * 10 + k))
            .collect();
        let expect: Vec<u32> = (0u32..100)
            .flat_map(|c| (0..3).map(move |k| c * 10 + k))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_sort_unstable_sorts() {
        let mut v: Vec<u64> = (0..2_000).rev().collect();
        v.par_sort_unstable();
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn par_sort_matches_sequential_across_thread_counts() {
        // Deterministic pseudo-random input (LCG), with duplicates.
        let mut data: Vec<u64> = Vec::with_capacity(100_000);
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..100_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            data.push(x >> 40); // narrow range => many duplicates
        }
        let mut expect = data.clone();
        expect.sort_unstable();
        for threads in [1usize, 2, 3, 8] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let mut got = data.clone();
            pool.install(|| got.par_sort_unstable());
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_sort_accepts_non_copy_types_across_thread_counts() {
        // `String` is Ord + Clone but not Copy: exercises the clone-based
        // merge path that real rayon supports (`T: Ord + Send`).
        let mut data: Vec<String> = Vec::with_capacity(20_000);
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            data.push(format!("key-{:05}", x >> 48));
        }
        let mut expect = data.clone();
        expect.sort_unstable();
        for threads in [1usize, 2, 8] {
            let pool = crate::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let mut got = data.clone();
            pool.install(|| got.par_sort_unstable());
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_sort_handles_uneven_and_tiny_inputs() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(7)
            .build()
            .expect("pool");
        for len in [0usize, 1, 2, 31, 4_095, 4_096, 4_097, 9_999] {
            let mut v: Vec<u64> = (0..len as u64).rev().map(|i| i % 97).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            pool.install(|| v.par_sort_unstable());
            assert_eq!(v, expect, "len={len}");
        }
    }

    #[test]
    fn pool_install_bounds_threads() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("pool");
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 2);
    }
}
