//! B+-tree ordered set over `u32` keys.
//!
//! Terrace stores the edges of high-degree vertices in a B-tree (paper §2.3):
//! updates touch only one leaf (small, *vertical* data movement), but
//! traversal chases child pointers, which is exactly the cache behaviour the
//! paper contrasts against LSGraph's HITree. This is a from-scratch
//! implementation — leaves hold sorted arrays, internal nodes hold separator
//! keys — sized so a leaf spans a handful of cache lines.

use lsgraph_api::{Footprint, MemoryFootprint};

/// Maximum keys per leaf (4 cache lines of `u32`).
const LEAF_CAP: usize = 64;
/// Maximum children per internal node.
const FANOUT: usize = 32;

#[derive(Clone, Debug)]
// Children stay boxed deliberately: separator shifts on split/merge then
// move 8-byte pointers instead of whole nodes, and the per-child pointer
// chase is precisely the B-tree traversal behaviour this baseline models.
#[allow(clippy::vec_box)]
enum BNode {
    Leaf(Vec<u32>),
    Internal {
        /// `keys[i]` is the smallest key in `children[i + 1]`'s subtree.
        keys: Vec<u32>,
        children: Vec<Box<BNode>>,
    },
}

/// Result of a recursive insert: a split produces a new right sibling and its
/// separator key.
enum InsertUp {
    Done(bool),
    Split(u32, Box<BNode>, bool),
}

impl BNode {
    fn contains(&self, key: u32) -> bool {
        match self {
            BNode::Leaf(v) => v.binary_search(&key).is_ok(),
            BNode::Internal { keys, children } => {
                let i = keys.partition_point(|&k| k <= key);
                children[i].contains(key)
            }
        }
    }

    fn insert(&mut self, key: u32) -> InsertUp {
        match self {
            BNode::Leaf(v) => match v.binary_search(&key) {
                Ok(_) => InsertUp::Done(false),
                Err(i) => {
                    v.insert(i, key);
                    if v.len() > LEAF_CAP {
                        let right = v.split_off(v.len() / 2);
                        let sep = right[0];
                        InsertUp::Split(sep, Box::new(BNode::Leaf(right)), true)
                    } else {
                        InsertUp::Done(true)
                    }
                }
            },
            BNode::Internal { keys, children } => {
                let i = keys.partition_point(|&k| k <= key);
                match children[i].insert(key) {
                    InsertUp::Done(added) => InsertUp::Done(added),
                    InsertUp::Split(sep, node, added) => {
                        keys.insert(i, sep);
                        children.insert(i + 1, node);
                        if children.len() > FANOUT {
                            let mid = children.len() / 2;
                            // The separator between halves moves up.
                            let right_keys = keys.split_off(mid);
                            let up = keys.pop().expect("split point inside keys");
                            let right_children = children.split_off(mid);
                            let right = Box::new(BNode::Internal {
                                keys: right_keys,
                                children: right_children,
                            });
                            InsertUp::Split(up, right, added)
                        } else {
                            InsertUp::Done(added)
                        }
                    }
                }
            }
        }
    }

    /// Deletes `key`; returns `(removed, underflow)`.
    fn delete(&mut self, key: u32) -> (bool, bool) {
        match self {
            BNode::Leaf(v) => match v.binary_search(&key) {
                Ok(i) => {
                    v.remove(i);
                    (true, v.len() < LEAF_CAP / 4)
                }
                Err(_) => (false, false),
            },
            BNode::Internal { keys, children } => {
                let i = keys.partition_point(|&k| k <= key);
                let (removed, under) = children[i].delete(key);
                if removed && under {
                    Self::fix_underflow(keys, children, i);
                }
                (removed, children.len() < 2)
            }
        }
    }

    /// Rebalances child `i` after underflow by borrowing from or merging with
    /// an adjacent sibling.
    #[allow(clippy::vec_box)]
    fn fix_underflow(keys: &mut Vec<u32>, children: &mut Vec<Box<BNode>>, i: usize) {
        let sib = if i > 0 { i - 1 } else { i + 1 };
        if sib >= children.len() {
            return; // single child: nothing to rebalance with
        }
        let (l, r) = if sib < i { (sib, i) } else { (i, sib) };
        let (a, b) = children.split_at_mut(r);
        match (a[l].as_mut(), b[0].as_mut()) {
            (BNode::Leaf(lv), BNode::Leaf(rv)) => {
                if lv.len() + rv.len() <= LEAF_CAP {
                    lv.extend_from_slice(rv);
                    children.remove(r);
                    keys.remove(l);
                } else if rv.len() > lv.len() {
                    let moved = rv.remove(0);
                    lv.push(moved);
                    keys[l] = rv[0];
                } else {
                    let moved = lv.pop().expect("left leaf cannot be empty");
                    rv.insert(0, moved);
                    keys[l] = moved;
                }
            }
            (
                BNode::Internal {
                    keys: lk,
                    children: lc,
                },
                BNode::Internal {
                    keys: rk,
                    children: rc,
                },
            ) => {
                if lc.len() + rc.len() <= FANOUT {
                    lk.push(keys[l]);
                    lk.append(rk);
                    lc.append(rc);
                    children.remove(r);
                    keys.remove(l);
                } else if rc.len() > lc.len() {
                    let moved_child = rc.remove(0);
                    let moved_key = rk.remove(0);
                    lk.push(keys[l]);
                    keys[l] = moved_key;
                    lc.push(moved_child);
                } else {
                    let moved_child = lc.pop().expect("left internal cannot be empty");
                    let moved_key = lk.pop().expect("left internal cannot be empty");
                    rk.insert(0, keys[l]);
                    keys[l] = moved_key;
                    rc.insert(0, moved_child);
                }
            }
            _ => unreachable!("siblings at the same depth share a kind"),
        }
    }

    fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        match self {
            BNode::Leaf(v) => {
                for &k in v {
                    if !f(k) {
                        return false;
                    }
                }
                true
            }
            BNode::Internal { children, .. } => {
                for c in children {
                    if !c.for_each_while(f) {
                        return false;
                    }
                }
                true
            }
        }
    }

    fn footprint(&self) -> Footprint {
        match self {
            BNode::Leaf(v) => Footprint::new(v.capacity() * 4, 0),
            BNode::Internal { keys, children } => {
                let mut fp = Footprint::new(
                    0,
                    keys.capacity() * 4 + children.capacity() * core::mem::size_of::<Box<BNode>>(),
                );
                for c in children {
                    fp += c.footprint();
                }
                fp
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            BNode::Leaf(_) => 0,
            BNode::Internal { children, .. } => 1 + children[0].depth(),
        }
    }

    fn check(&self, lo: Option<u32>, hi: Option<u32>, depth: usize, is_root: bool) -> usize {
        match self {
            BNode::Leaf(v) => {
                assert!(v.windows(2).all(|w| w[0] < w[1]), "leaf unsorted");
                assert!(v.len() <= LEAF_CAP);
                for &k in v {
                    assert!(lo.is_none_or(|l| k >= l), "key below range");
                    assert!(hi.is_none_or(|h| k < h), "key above range");
                }
                assert_eq!(depth, 0, "leaves at different depths");
                v.len()
            }
            BNode::Internal { keys, children } => {
                assert!(depth > 0);
                assert_eq!(keys.len() + 1, children.len());
                assert!(children.len() <= FANOUT);
                if !is_root {
                    assert!(children.len() >= 2);
                }
                assert!(keys.windows(2).all(|w| w[0] < w[1]), "separators unsorted");
                let mut total = 0;
                for (i, c) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                    let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                    total += c.check(clo, chi, depth - 1, false);
                }
                total
            }
        }
    }
}

/// An ordered `u32` set stored as a B+-tree.
#[derive(Clone, Debug)]
pub struct BTreeSet32 {
    root: BNode,
    len: usize,
}

impl BTreeSet32 {
    /// Creates an empty set.
    pub fn new() -> Self {
        BTreeSet32 {
            root: BNode::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Bulk-loads from a sorted duplicate-free slice.
    pub fn from_sorted(sorted: &[u32]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        // Build leaves at ~3/4 occupancy, then stack internal levels.
        let target = LEAF_CAP * 3 / 4;
        let mut level: Vec<(u32, Box<BNode>)> = sorted
            .chunks(target.max(1))
            .map(|c| (c[0], Box::new(BNode::Leaf(c.to_vec()))))
            .collect();
        if level.is_empty() {
            return BTreeSet32::new();
        }
        while level.len() > 1 {
            let group = FANOUT * 3 / 4;
            level = level
                .chunks_mut(group)
                .map(|chunk| {
                    let first = chunk[0].0;
                    let mut keys = Vec::with_capacity(chunk.len() - 1);
                    let mut children = Vec::with_capacity(chunk.len());
                    for (i, (k, node)) in chunk.iter_mut().enumerate() {
                        if i > 0 {
                            keys.push(*k);
                        }
                        children.push(core::mem::replace(node, Box::new(BNode::Leaf(Vec::new()))));
                    }
                    (first, Box::new(BNode::Internal { keys, children }))
                })
                .collect();
        }
        BTreeSet32 {
            root: *level.pop().expect("level cannot be empty").1,
            len: sorted.len(),
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns whether `key` is present.
    pub fn contains(&self, key: u32) -> bool {
        self.root.contains(key)
    }

    /// Inserts `key`; returns whether it was added.
    pub fn insert(&mut self, key: u32) -> bool {
        match self.root.insert(key) {
            InsertUp::Done(added) => {
                self.len += usize::from(added);
                added
            }
            InsertUp::Split(sep, right, added) => {
                let old = core::mem::replace(&mut self.root, BNode::Leaf(Vec::new()));
                self.root = BNode::Internal {
                    keys: vec![sep],
                    children: vec![Box::new(old), right],
                };
                self.len += usize::from(added);
                added
            }
        }
    }

    /// Deletes `key`; returns whether it was present.
    pub fn delete(&mut self, key: u32) -> bool {
        let (removed, _) = self.root.delete(key);
        if removed {
            self.len -= 1;
            // Collapse roots left with a single child.
            while let BNode::Internal { children, .. } = &mut self.root {
                if children.len() == 1 {
                    self.root = *children.pop().expect("checked non-empty");
                } else {
                    break;
                }
            }
        }
        removed
    }

    /// Applies `f` to every key in ascending order.
    pub fn for_each(&self, f: &mut dyn FnMut(u32)) {
        self.root.for_each_while(&mut |k| {
            f(k);
            true
        });
    }

    /// Applies `f` until it returns `false`; returns whether the scan
    /// completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        self.root.for_each_while(f)
    }

    /// Removes and returns the smallest key.
    pub fn pop_min(&mut self) -> Option<u32> {
        let mut min = None;
        self.root.for_each_while(&mut |k| {
            min = Some(k);
            false
        });
        let m = min?;
        self.delete(m);
        Some(m)
    }

    /// Collects all keys into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.len);
        self.for_each(&mut |k| v.push(k));
        v
    }

    /// Verifies tree invariants.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        let depth = self.root.depth();
        let total = self.root.check(None, None, depth, true);
        assert_eq!(total, self.len, "length accounting");
    }
}

impl Default for BTreeSet32 {
    fn default() -> Self {
        BTreeSet32::new()
    }
}

impl MemoryFootprint for BTreeSet32 {
    fn footprint(&self) -> Footprint {
        self.root.footprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn insert_contains_delete_small() {
        let mut t = BTreeSet32::new();
        assert!(t.insert(5));
        assert!(t.insert(1));
        assert!(!t.insert(5));
        assert!(t.contains(1) && t.contains(5) && !t.contains(2));
        assert!(t.delete(5));
        assert!(!t.delete(5));
        assert_eq!(t.to_vec(), vec![1]);
        t.check_invariants();
    }

    #[test]
    fn ascending_inserts_split_correctly() {
        let mut t = BTreeSet32::new();
        for k in 0..100_000u32 {
            assert!(t.insert(k));
        }
        t.check_invariants();
        assert_eq!(t.len(), 100_000);
        assert_eq!(t.to_vec(), (0..100_000).collect::<Vec<_>>());
    }

    #[test]
    fn descending_inserts() {
        let mut t = BTreeSet32::new();
        for k in (0..50_000u32).rev() {
            t.insert(k);
        }
        t.check_invariants();
        assert_eq!(t.to_vec(), (0..50_000).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_round_trip() {
        for n in [0usize, 1, 63, 64, 65, 1_000, 100_000] {
            let v: Vec<u32> = (0..n as u32).map(|i| i * 2).collect();
            let t = BTreeSet32::from_sorted(&v);
            t.check_invariants();
            assert_eq!(t.to_vec(), v, "n = {n}");
        }
    }

    #[test]
    fn random_differential() {
        let mut rng = SmallRng::seed_from_u64(19);
        let mut t = BTreeSet32::new();
        let mut oracle = std::collections::BTreeSet::new();
        for _ in 0..60_000 {
            let k = rng.gen_range(0..10_000u32);
            if rng.gen_bool(0.55) {
                assert_eq!(t.insert(k), oracle.insert(k));
            } else {
                assert_eq!(t.delete(k), oracle.remove(&k));
            }
        }
        t.check_invariants();
        assert_eq!(t.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn delete_everything() {
        let mut t = BTreeSet32::from_sorted(&(0..10_000).collect::<Vec<_>>());
        for k in 0..10_000 {
            assert!(t.delete(k), "delete {k}");
        }
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn pop_min_drains_in_order() {
        let mut t = BTreeSet32::from_sorted(&[3, 7, 9]);
        assert_eq!(t.pop_min(), Some(3));
        assert_eq!(t.pop_min(), Some(7));
        assert_eq!(t.pop_min(), Some(9));
        assert_eq!(t.pop_min(), None);
    }

    #[test]
    fn for_each_while_early_exit() {
        let t = BTreeSet32::from_sorted(&(0..1_000).collect::<Vec<_>>());
        let mut seen = 0;
        assert!(!t.for_each_while(&mut |_| {
            seen += 1;
            seen < 5
        }));
        assert_eq!(seen, 5);
    }

    #[test]
    fn footprint_nonzero() {
        let t = BTreeSet32::from_sorted(&(0..10_000).collect::<Vec<_>>());
        let fp = t.footprint();
        assert!(fp.payload_bytes >= 10_000 * 4);
    }

    #[test]
    fn interleaved_bulk_then_updates() {
        let mut t = BTreeSet32::from_sorted(&(0..5_000).map(|i| i * 4).collect::<Vec<_>>());
        for k in 0..5_000u32 {
            t.insert(k * 4 + 2);
        }
        for k in 0..5_000u32 {
            assert!(t.delete(k * 4), "delete {}", k * 4);
        }
        t.check_invariants();
        assert_eq!(t.len(), 5_000);
        assert_eq!(
            t.to_vec(),
            (0..5_000).map(|i| i * 4 + 2).collect::<Vec<_>>()
        );
    }
}
