//! Packed Memory Array (PMA) substrate.
//!
//! The PMA \[Bender & Hu 2007\] is the ordered gapped array used by
//! PCSR-style streaming graph representations and by Terrace's middle tier.
//! LSGraph's motivation experiments (paper §2.2–2.3, Fig. 2/4) analyze its
//! two weaknesses — data-dependent binary search and large rebalance
//! movements — so this implementation is instrumented with
//! [`lsgraph_api::OpCounters`] to reproduce those measurements.
//!
//! Two consumers:
//! * [`PmaGraph`]: a whole-graph baseline storing every edge as a packed
//!   `u64` key in one PMA (the representation Terrace builds on).
//! * Per-vertex [`Pma<u32>`] adjacency, used by LSGraph's "PMA instead of
//!   RIA" ablation (paper §6.2).

mod graph;
mod pma;

pub use graph::PmaGraph;
pub use pma::{Pma, PmaIter, PmaKey, PmaParams};
