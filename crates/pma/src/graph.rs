//! PMA-backed whole-graph baseline (PCSR-style).
//!
//! Every directed edge `(u, v)` is stored as the packed key `u << 32 | v` in
//! a single PMA, reproducing the representation whose update behaviour the
//! paper's motivation section analyzes: one big ordered gapped array where a
//! burst of inserts into one vertex's range shifts edges belonging to other
//! vertices (Fig. 2).

use lsgraph_api::{
    CounterSnapshot, DynamicGraph, Edge, Footprint, Graph, MemoryFootprint, VertexId,
};

use crate::pma::{Pma, PmaParams};

/// A streaming graph stored as one PMA of packed edge keys.
pub struct PmaGraph {
    edges: Pma<u64>,
    degree: Vec<u32>,
}

impl PmaGraph {
    /// Creates an empty graph over `n` vertices with Terrace-like density
    /// bounds.
    pub fn new(n: usize) -> Self {
        PmaGraph {
            edges: Pma::new(),
            degree: vec![0; n],
        }
    }

    /// Creates an empty graph with explicit PMA density bounds.
    pub fn with_params(n: usize, params: PmaParams) -> Self {
        PmaGraph {
            edges: Pma::with_params(params),
            degree: vec![0; n],
        }
    }

    /// Bulk-loads from an edge list (duplicates and self-loop edges kept as
    /// given, except duplicate edges which collapse).
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut keys: Vec<u64> = edges.iter().map(|e| e.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut degree = vec![0u32; n];
        for &k in &keys {
            degree[(k >> 32) as usize] += 1;
        }
        PmaGraph {
            edges: Pma::from_sorted(&keys, PmaParams::default()),
            degree,
        }
    }

    /// Snapshot of the underlying PMA's search/movement counters (Fig. 4).
    pub fn counters(&self) -> CounterSnapshot {
        self.edges.counters.snapshot()
    }

    /// Verifies PMA invariants and degree accounting.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        self.edges.check_invariants();
        let mut deg = vec![0u32; self.degree.len()];
        self.edges.for_each(|k| deg[(k >> 32) as usize] += 1);
        assert_eq!(deg, self.degree, "degree accounting mismatch");
    }
}

impl Graph for PmaGraph {
    fn num_vertices(&self) -> usize {
        self.degree.len()
    }

    fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.degree[v as usize] as usize
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        if self.degree[v as usize] == 0 {
            return;
        }
        let from = (v as u64) << 32;
        let to = (v as u64 + 1) << 32;
        self.edges.for_each_range(from, to, |k| f(k as u32));
    }

    fn for_each_neighbor_while(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        if self.degree[v as usize] == 0 {
            return true;
        }
        let from = (v as u64) << 32;
        let to = (v as u64 + 1) << 32;
        self.edges.for_each_range_while(from, to, |k| f(k as u32))
    }

    fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.edges.contains(Edge::new(v, u).key())
    }
}

impl DynamicGraph for PmaGraph {
    fn insert_batch(&mut self, batch: &[Edge]) -> usize {
        let mut keys: Vec<u64> = batch.iter().map(|e| e.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut added = 0;
        for k in keys {
            if self.edges.insert(k) {
                self.degree[(k >> 32) as usize] += 1;
                added += 1;
            }
        }
        added
    }

    fn delete_batch(&mut self, batch: &[Edge]) -> usize {
        let mut keys: Vec<u64> = batch.iter().map(|e| e.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut removed = 0;
        for k in keys {
            if self.edges.delete(k) {
                self.degree[(k >> 32) as usize] -= 1;
                removed += 1;
            }
        }
        removed
    }

    fn op_counters(&self) -> Option<CounterSnapshot> {
        Some(self.counters())
    }

    fn reset_instrumentation(&mut self) {
        self.edges.counters.reset();
    }
}

impl MemoryFootprint for PmaGraph {
    fn footprint(&self) -> Footprint {
        self.edges.footprint() + Footprint::new(0, self.degree.len() * core::mem::size_of::<u32>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs.iter().map(|&(a, b)| Edge::new(a, b)).collect()
    }

    #[test]
    fn build_and_read() {
        let g = PmaGraph::from_edges(4, &edges(&[(0, 1), (0, 2), (1, 3), (3, 0), (0, 1)]));
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), vec![1, 2]);
        assert_eq!(g.neighbors(2), Vec::<u32>::new());
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(0, 3));
        g.check_invariants();
    }

    #[test]
    fn batch_updates() {
        let mut g = PmaGraph::new(10);
        assert_eq!(g.insert_batch(&edges(&[(1, 2), (1, 3), (2, 4), (1, 2)])), 3);
        assert_eq!(g.insert_batch(&edges(&[(1, 2)])), 0);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.delete_batch(&edges(&[(1, 2), (9, 9)])), 1);
        assert_eq!(g.neighbors(1), vec![3]);
        g.check_invariants();
    }

    #[test]
    fn neighbors_sorted_after_many_inserts() {
        let mut g = PmaGraph::new(3);
        let mut batch = Vec::new();
        for i in (0..500u32).rev() {
            batch.push(Edge::new(1, i * 2));
        }
        g.insert_batch(&batch);
        let ns = g.neighbors(1);
        assert_eq!(ns.len(), 500);
        assert!(ns.windows(2).all(|w| w[0] < w[1]));
        g.check_invariants();
    }

    #[test]
    fn undirected_helper() {
        let mut g = PmaGraph::new(5);
        g.insert_batch_undirected(&edges(&[(0, 1), (2, 3)]));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(3, 2));
        assert_eq!(g.num_edges(), 4);
    }
}
