//! Generic density-bounded Packed Memory Array.

use lsgraph_api::{Footprint, MemoryFootprint, OpCounters};

/// Keys storable in a [`Pma`].
pub trait PmaKey: Copy + Ord + core::fmt::Debug + Send + Sync {
    /// Sentinel meaning "empty slot"; never stored as a real key.
    const EMPTY: Self;
    /// Smallest real key.
    const MIN: Self;
}

impl PmaKey for u64 {
    const EMPTY: Self = u64::MAX;
    const MIN: Self = 0;
}

impl PmaKey for u32 {
    const EMPTY: Self = u32::MAX;
    const MIN: Self = 0;
}

/// Density bounds, interpolated linearly from root to leaf over the implicit
/// rebalance tree (Bender & Hu's scheme).
///
/// The defaults mirror Terrace's configuration as reported in the paper's
/// Table 3 analysis: root occupancy is kept in `[0.125, 0.25]`, i.e. a 4–8×
/// space amplification.
#[derive(Clone, Copy, Debug)]
pub struct PmaParams {
    /// Minimum density at the root window.
    pub root_lower: f64,
    /// Maximum density at the root window.
    pub root_upper: f64,
    /// Minimum density at a leaf segment.
    pub leaf_lower: f64,
    /// Maximum density at a leaf segment.
    pub leaf_upper: f64,
}

impl Default for PmaParams {
    fn default() -> Self {
        PmaParams {
            root_lower: 0.125,
            root_upper: 0.25,
            leaf_lower: 0.05,
            leaf_upper: 0.75,
        }
    }
}

impl PmaParams {
    /// A denser configuration (root occupancy up to 50%) for memory-conscious
    /// uses such as the per-vertex PMA ablation.
    pub fn dense() -> Self {
        PmaParams {
            root_lower: 0.2,
            root_upper: 0.5,
            leaf_lower: 0.1,
            leaf_upper: 0.9,
        }
    }

    fn validate(&self) {
        assert!(self.root_lower > 0.0 && self.root_lower < self.root_upper);
        assert!(self.root_upper < self.leaf_upper && self.leaf_upper <= 1.0);
        assert!(self.leaf_lower < self.root_lower);
    }
}

/// An ordered gapped array with density-bounded segments and an implicit
/// binary rebalance tree (paper §2.2, Fig. 2).
///
/// Elements within a segment are stored as a packed sorted prefix; segments
/// collectively range-partition the key space. A violated density bound
/// triggers redistribution over the smallest enclosing window that satisfies
/// its (depth-interpolated) bound, doubling or halving the whole array when
/// even the root window fails — the "massive data movement" behaviour the
/// paper measures.
#[derive(Debug)]
pub struct Pma<K: PmaKey> {
    data: Vec<K>,
    counts: Vec<u32>,
    seg_size: usize,
    len: usize,
    params: PmaParams,
    /// Movement/search statistics for the Fig. 4 reproduction.
    pub counters: OpCounters,
}

impl<K: PmaKey> Pma<K> {
    /// Creates an empty PMA with default (Terrace-like) density bounds.
    pub fn new() -> Self {
        Pma::with_params(PmaParams::default())
    }

    /// Creates an empty PMA with explicit density bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not ordered
    /// `leaf_lower < root_lower < root_upper < leaf_upper <= 1`.
    pub fn with_params(params: PmaParams) -> Self {
        params.validate();
        let seg_size = 8;
        Pma {
            data: vec![K::EMPTY; seg_size * 2],
            counts: vec![0; 2],
            seg_size,
            len: 0,
            params,
            counters: OpCounters::new(),
        }
    }

    /// Bulk-loads from a sorted duplicate-free slice.
    pub fn from_sorted(sorted: &[K], params: PmaParams) -> Self {
        let mut pma = Pma::with_params(params);
        if !sorted.is_empty() {
            pma.resize_for(sorted.len());
            pma.redistribute_all(sorted);
            pma.len = sorted.len();
        }
        pma
    }

    /// Number of stored keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn num_segs(&self) -> usize {
        self.counts.len()
    }

    #[inline]
    fn seg(&self, s: usize) -> &[K] {
        &self.data[s * self.seg_size..s * self.seg_size + self.counts[s] as usize]
    }

    /// The element at or left of gapped position `pos` within `[lo, pos]`,
    /// as `(position, value)`; `None` when that whole range is gaps.
    #[inline]
    fn probe_left(&self, pos: isize, lo: isize) -> Option<(isize, K)> {
        let mut s = pos as usize / self.seg_size;
        let off = pos as usize % self.seg_size;
        let cnt = self.counts[s] as usize;
        if cnt > 0 {
            let o = off.min(cnt - 1);
            let p = (s * self.seg_size + o) as isize;
            if p >= lo {
                return Some((p, self.data[p as usize]));
            }
            // p < lo means lo lies inside this segment past its prefix, so
            // the whole probed range is gaps.
            return None;
        }
        // Walk left across segments until one has an element in range.
        while s > 0 {
            s -= 1;
            let cnt = self.counts[s] as usize;
            if cnt > 0 {
                let p = (s * self.seg_size + cnt - 1) as isize;
                return (p >= lo).then(|| (p, self.data[p as usize]));
            }
            if ((s + 1) * self.seg_size) as isize <= lo {
                break;
            }
        }
        None
    }

    /// Locates the segment whose range covers `key` with the classic PMA
    /// lookup: a binary search over the *gapped position space*, each probe
    /// resolving gaps by walking left — the serially-dependent,
    /// cache-unfriendly pattern the paper's motivation (§2.3, Fig. 2)
    /// analyzes. Returns the segment of the rightmost element `<= key`, else
    /// the first non-empty segment, else 0.
    fn find_seg(&self, key: K) -> usize {
        let mut steps = 0u64;
        let mut ans: Option<isize> = None;
        let mut lo = 0isize;
        let mut hi = self.data.len() as isize - 1;
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            steps += 1;
            match self.probe_left(mid, lo) {
                None => lo = mid + 1,
                Some((p, v)) => {
                    if v <= key {
                        ans = Some(p);
                        lo = p + 1;
                    } else {
                        hi = p - 1;
                    }
                }
            }
        }
        self.counters.add_search(steps);
        match ans {
            Some(p) => p as usize / self.seg_size,
            None => (0..self.num_segs())
                .find(|&s| self.counts[s] > 0)
                .unwrap_or(0),
        }
    }

    /// Returns whether `key` is present.
    pub fn contains(&self, key: K) -> bool {
        if self.len == 0 {
            return false;
        }
        let s = self.find_seg(key);
        self.seg(s).binary_search(&key).is_ok()
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&mut self, key: K) -> bool {
        debug_assert_ne!(key, K::EMPTY, "sentinel key cannot be stored");
        if self.len == 0 {
            self.data[0] = key;
            self.counts[0] = 1;
            self.len = 1;
            return true;
        }
        let s = self.find_seg(key);
        let pos = match self.seg(s).binary_search(&key) {
            Ok(_) => return false,
            Err(i) => i,
        };
        let cnt = self.counts[s] as usize;
        if self.density_ok_after_insert(s) {
            let base = s * self.seg_size;
            self.data
                .copy_within(base + pos..base + cnt, base + pos + 1);
            self.data[base + pos] = key;
            self.counts[s] += 1;
            self.counters.add_moves((cnt - pos) as u64);
            self.len += 1;
            return true;
        }
        // Leaf bound violated: rebalance the smallest satisfying window,
        // growing the array if even the root window is too dense.
        self.rebalance_insert(s, key);
        self.len += 1;
        true
    }

    /// Deletes `key`; returns whether it was present.
    pub fn delete(&mut self, key: K) -> bool {
        if self.len == 0 {
            return false;
        }
        let s = self.find_seg(key);
        let cnt = self.counts[s] as usize;
        let pos = match self.seg(s).binary_search(&key) {
            Ok(i) => i,
            Err(_) => return false,
        };
        let base = s * self.seg_size;
        self.data
            .copy_within(base + pos + 1..base + cnt, base + pos);
        self.data[base + cnt - 1] = K::EMPTY;
        self.counts[s] -= 1;
        self.counters.add_moves((cnt - 1 - pos) as u64);
        self.len -= 1;
        // Rebalance upward if the leaf fell below its lower bound.
        let lower = self.bound_at_depth(self.depth(), false);
        if (self.counts[s] as f64) < lower * self.seg_size as f64 {
            self.rebalance_delete(s);
        }
        true
    }

    /// Applies `f` to every key in ascending order.
    pub fn for_each(&self, mut f: impl FnMut(K)) {
        for s in 0..self.num_segs() {
            for &k in self.seg(s) {
                f(k);
            }
        }
    }

    /// Applies `f` to keys in `[from, to)` in ascending order.
    pub fn for_each_range(&self, from: K, to: K, mut f: impl FnMut(K)) {
        if self.len == 0 || to <= from {
            return;
        }
        let start = self.find_seg(from);
        for s in start..self.num_segs() {
            for &k in self.seg(s) {
                if k >= to {
                    return;
                }
                if k >= from {
                    f(k);
                }
            }
        }
    }

    /// Applies `f` to keys in `[from, to)` until it returns `false`;
    /// returns whether the scan completed.
    pub fn for_each_range_while(&self, from: K, to: K, mut f: impl FnMut(K) -> bool) -> bool {
        if self.len == 0 || to <= from {
            return true;
        }
        let start = self.find_seg(from);
        for s in start..self.num_segs() {
            for &k in self.seg(s) {
                if k >= to {
                    return true;
                }
                if k >= from && !f(k) {
                    return false;
                }
            }
        }
        true
    }

    /// Counts keys in `[from, to)`.
    pub fn count_range(&self, from: K, to: K) -> usize {
        let mut n = 0;
        self.for_each_range(from, to, |_| n += 1);
        n
    }

    /// Number of segments (for consumers maintaining offset hints, as
    /// PCSR-style graphs do).
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.num_segs()
    }

    /// First key of segment `s`, or `None` when the segment is empty.
    #[inline]
    pub fn segment_first(&self, s: usize) -> Option<K> {
        (self.counts[s] > 0).then(|| self.data[s * self.seg_size])
    }

    /// Like [`Pma::for_each_range_while`] but starting the scan at segment
    /// `hint` instead of binary-searching, exactly as a PCSR offset array
    /// does. `hint` must be at or before the segment containing `from`
    /// (e.g. produced from [`Pma::segment_first`] snapshots).
    pub fn for_each_range_hinted_while(
        &self,
        hint: usize,
        from: K,
        to: K,
        mut f: impl FnMut(K) -> bool,
    ) -> bool {
        if self.len == 0 || to <= from {
            return true;
        }
        for s in hint.min(self.num_segs() - 1)..self.num_segs() {
            for &k in self.seg(s) {
                if k >= to {
                    return true;
                }
                if k >= from && !f(k) {
                    return false;
                }
            }
        }
        true
    }

    /// Collects all keys into a sorted vector.
    pub fn to_vec(&self) -> Vec<K> {
        let mut v = Vec::with_capacity(self.len);
        self.for_each(|k| v.push(k));
        v
    }

    /// Iterates keys in ascending order.
    pub fn iter(&self) -> PmaIter<'_, K> {
        PmaIter {
            pma: self,
            seg: 0,
            off: 0,
        }
    }

    /// Height of the implicit rebalance tree (root depth 0, leaves deepest).
    fn depth(&self) -> u32 {
        self.num_segs().ilog2()
    }

    /// Density bound at `depth`; `upper` selects max vs min.
    fn bound_at_depth(&self, depth: u32, upper: bool) -> f64 {
        let h = self.depth().max(1) as f64;
        let t = depth as f64 / h; // 0 at root, 1 at leaves
        if upper {
            self.params.root_upper + (self.params.leaf_upper - self.params.root_upper) * t
        } else {
            self.params.root_lower + (self.params.leaf_lower - self.params.root_lower) * t
        }
    }

    fn density_ok_after_insert(&self, s: usize) -> bool {
        let upper = self.bound_at_depth(self.depth(), true);
        ((self.counts[s] + 1) as f64) <= upper * self.seg_size as f64
    }

    /// Walks up the implicit tree from leaf `s` to find the smallest window
    /// satisfying its upper bound with one extra element, then redistributes
    /// that window and re-inserts `key`; grows the array if no window works.
    fn rebalance_insert(&mut self, s: usize, key: K) {
        let mut w = 1usize; // window size in segments
        let mut depth = self.depth();
        loop {
            w *= 2;
            depth = depth.saturating_sub(1);
            if w > self.num_segs() {
                break;
            }
            let start = (s / w) * w;
            let total: usize = (start..start + w).map(|i| self.counts[i] as usize).sum();
            let upper = self.bound_at_depth(depth, true);
            if ((total + 1) as f64) <= upper * (w * self.seg_size) as f64 {
                let mut buf = Vec::with_capacity(total + 1);
                for i in start..start + w {
                    buf.extend_from_slice(self.seg(i));
                }
                let at = buf.partition_point(|&x| x < key);
                buf.insert(at, key);
                self.write_window(start, w, &buf);
                self.counters.add_moves(buf.len() as u64);
                return;
            }
        }
        // Root window failed: grow and redistribute everything.
        let mut all = self.to_vec();
        let at = all.partition_point(|&x| x < key);
        all.insert(at, key);
        self.resize_for(all.len());
        self.redistribute_all(&all);
        self.counters.add_rebuild();
    }

    /// Walks up from leaf `s` to find the smallest window satisfying its
    /// lower bound, redistributing it; shrinks the array if the root window
    /// is too sparse.
    fn rebalance_delete(&mut self, s: usize) {
        let mut w = 1usize;
        let mut depth = self.depth();
        loop {
            w *= 2;
            depth = depth.saturating_sub(1);
            if w > self.num_segs() {
                break;
            }
            let start = (s / w) * w;
            let total: usize = (start..start + w).map(|i| self.counts[i] as usize).sum();
            let lower = self.bound_at_depth(depth, false);
            if total as f64 >= lower * (w * self.seg_size) as f64 {
                let mut buf = Vec::with_capacity(total);
                for i in start..start + w {
                    buf.extend_from_slice(self.seg(i));
                }
                self.write_window(start, w, &buf);
                self.counters.add_moves(buf.len() as u64);
                return;
            }
        }
        let all = self.to_vec();
        self.resize_for(all.len().max(1));
        self.redistribute_all(&all);
        self.counters.add_rebuild();
    }

    /// Evenly redistributes `buf` across the `w` segments starting at
    /// `start`.
    fn write_window(&mut self, start: usize, w: usize, buf: &[K]) {
        let base = buf.len() / w;
        let extra = buf.len() % w;
        let mut src = 0;
        for i in 0..w {
            let take = base + usize::from(i < extra);
            debug_assert!(take <= self.seg_size);
            let off = (start + i) * self.seg_size;
            self.data[off..off + take].copy_from_slice(&buf[src..src + take]);
            for slot in &mut self.data[off + take..off + self.seg_size] {
                *slot = K::EMPTY;
            }
            self.counts[start + i] = take as u32;
            src += take;
        }
        debug_assert_eq!(src, buf.len());
    }

    /// Resizes storage so `n` elements sit near the middle of the root
    /// density range, recomputing segment size as `Θ(log capacity)`.
    fn resize_for(&mut self, n: usize) {
        let target = self.params.root_lower.midpoint(self.params.root_upper);
        let mut cap = ((n as f64 / target).ceil() as usize)
            .max(16)
            .next_power_of_two();
        let mut seg = (cap.ilog2() as usize).next_power_of_two().max(8);
        // Capacity must be a power-of-two multiple of the segment size.
        while !cap.is_multiple_of(seg) || cap / seg < 2 {
            cap *= 2;
            seg = (cap.ilog2() as usize).next_power_of_two().max(8);
        }
        self.seg_size = seg;
        self.data = vec![K::EMPTY; cap];
        self.counts = vec![0; cap / seg];
    }

    fn redistribute_all(&mut self, sorted: &[K]) {
        let w = self.num_segs();
        self.write_window(0, w, sorted);
        self.counters.add_moves(sorted.len() as u64);
    }

    /// Verifies structural invariants.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        assert!(self.num_segs().is_power_of_two());
        assert_eq!(self.data.len(), self.num_segs() * self.seg_size);
        let total: usize = self.counts.iter().map(|&c| c as usize).sum();
        assert_eq!(total, self.len);
        let mut prev: Option<K> = None;
        for s in 0..self.num_segs() {
            let cnt = self.counts[s] as usize;
            assert!(cnt <= self.seg_size);
            for (i, &k) in self.data[s * self.seg_size..(s + 1) * self.seg_size]
                .iter()
                .enumerate()
            {
                if i < cnt {
                    assert_ne!(k, K::EMPTY);
                    if let Some(p) = prev {
                        assert!(p < k, "order violation");
                    }
                    prev = Some(k);
                } else {
                    assert_eq!(k, K::EMPTY, "stale slot past prefix");
                }
            }
        }
    }
}

/// Ascending iterator over a [`Pma`].
#[derive(Clone, Debug)]
pub struct PmaIter<'a, K: PmaKey> {
    pma: &'a Pma<K>,
    seg: usize,
    off: usize,
}

impl<K: PmaKey> Iterator for PmaIter<'_, K> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        while self.seg < self.pma.num_segs() {
            if self.off < self.pma.counts[self.seg] as usize {
                let v = self.pma.data[self.seg * self.pma.seg_size + self.off];
                self.off += 1;
                return Some(v);
            }
            self.seg += 1;
            self.off = 0;
        }
        None
    }
}

impl<'a, K: PmaKey> IntoIterator for &'a Pma<K> {
    type Item = K;
    type IntoIter = PmaIter<'a, K>;

    fn into_iter(self) -> PmaIter<'a, K> {
        self.iter()
    }
}

impl<K: PmaKey> Default for Pma<K> {
    fn default() -> Self {
        Pma::new()
    }
}

impl<K: PmaKey> Clone for Pma<K> {
    fn clone(&self) -> Self {
        Pma {
            data: self.data.clone(),
            counts: self.counts.clone(),
            seg_size: self.seg_size,
            len: self.len,
            params: self.params,
            counters: OpCounters::new(),
        }
    }
}

impl<K: PmaKey> MemoryFootprint for Pma<K> {
    fn footprint(&self) -> Footprint {
        Footprint::new(
            self.data.len() * core::mem::size_of::<K>(),
            self.counts.len() * core::mem::size_of::<u32>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn insert_contains_roundtrip() {
        let mut p = Pma::<u64>::new();
        for k in [50u64, 10, 30, 20, 40] {
            assert!(p.insert(k));
        }
        p.check_invariants();
        assert!(!p.insert(30));
        assert_eq!(p.to_vec(), vec![10, 20, 30, 40, 50]);
        assert!(p.contains(10) && p.contains(50));
        assert!(!p.contains(11));
    }

    #[test]
    fn sequential_inserts_trigger_growth() {
        let mut p = Pma::<u64>::new();
        for k in 0..20_000u64 {
            p.insert(k);
        }
        p.check_invariants();
        assert_eq!(p.len(), 20_000);
        assert_eq!(p.to_vec(), (0..20_000).collect::<Vec<_>>());
        // Root density bound keeps occupancy at or below root_upper after
        // any growth; allow slack for inserts since the last resize.
        let occ = p.len() as f64 / p.capacity() as f64;
        assert!(occ <= 0.8, "occupancy {occ}");
        assert!(p.counters.snapshot().rebuilds > 0);
    }

    #[test]
    fn movement_counters_grow() {
        let mut p = Pma::<u64>::new();
        for k in 0..5_000u64 {
            p.insert(k * 2);
        }
        let before = p.counters.snapshot();
        // Middle inserts force shifting/rebalancing.
        for k in 0..2_000u64 {
            p.insert(k * 2 + 1);
        }
        let after = p.counters.snapshot().since(before);
        assert!(after.elements_moved > 500, "moved {}", after.elements_moved);
        assert!(after.search_steps > 0);
    }

    #[test]
    fn delete_and_shrink() {
        let mut p = Pma::<u64>::from_sorted(&(0..10_000).collect::<Vec<_>>(), PmaParams::default());
        let cap_before = p.capacity();
        for k in 0..9_000u64 {
            assert!(p.delete(k), "delete {k}");
        }
        p.check_invariants();
        assert_eq!(p.len(), 1_000);
        assert!(p.capacity() < cap_before, "should shrink");
        assert!(!p.delete(0));
        assert_eq!(p.to_vec(), (9_000..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan() {
        let p = Pma::<u64>::from_sorted(
            &(0..1000).map(|i| i * 3).collect::<Vec<_>>(),
            PmaParams::default(),
        );
        let mut got = Vec::new();
        p.for_each_range(30, 60, |k| got.push(k));
        assert_eq!(got, vec![30, 33, 36, 39, 42, 45, 48, 51, 54, 57]);
        assert_eq!(p.count_range(0, 3000), 1000);
        assert_eq!(p.count_range(2997, 10_000), 1);
        assert_eq!(p.count_range(10, 10), 0);
    }

    #[test]
    fn random_differential_u32() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut p = Pma::<u32>::with_params(PmaParams::dense());
        let mut oracle = std::collections::BTreeSet::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(0..4_000u32);
            if rng.gen_bool(0.6) {
                assert_eq!(p.insert(k), oracle.insert(k));
            } else {
                assert_eq!(p.delete(k), oracle.remove(&k));
            }
        }
        p.check_invariants();
        assert_eq!(p.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn from_sorted_respects_density() {
        let v: Vec<u64> = (0..50_000).collect();
        let p = Pma::from_sorted(&v, PmaParams::default());
        p.check_invariants();
        assert_eq!(p.len(), 50_000);
        let occ = p.len() as f64 / p.capacity() as f64;
        assert!(occ <= 0.25 + 1e-9, "occupancy {occ} above root bound");
        assert!(occ >= 0.0625, "occupancy {occ} absurdly low");
    }

    #[test]
    fn empty_behaviour() {
        let mut p = Pma::<u64>::new();
        assert!(p.is_empty());
        assert!(!p.contains(0));
        assert!(!p.delete(3));
        assert_eq!(p.count_range(0, u64::MAX - 1), 0);
        p.for_each(|_| panic!("no elements expected"));
    }

    #[test]
    fn descending_inserts() {
        let mut p = Pma::<u64>::new();
        for k in (0..10_000u64).rev() {
            p.insert(k);
        }
        p.check_invariants();
        assert_eq!(p.to_vec(), (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn bad_params_rejected() {
        let _ = Pma::<u64>::with_params(PmaParams {
            root_lower: 0.5,
            root_upper: 0.25,
            leaf_lower: 0.05,
            leaf_upper: 0.75,
        });
    }
}
